package object

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		KindBool:   "bool",
		KindRef:    "ref",
		KindGRef:   "gref",
		KindList:   "list",
		Kind(99):   "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.Int64() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.Float64() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.Text() != "abc" {
		t.Errorf("Str = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Errorf("Bool(true) = %v", v)
	}
	if v := Bool(false); v.BoolVal() {
		t.Errorf("Bool(false) = %v", v)
	}
	if v := Ref("t1"); v.Kind() != KindRef || v.RefLOid() != "t1" || !v.IsRef() {
		t.Errorf("Ref = %v", v)
	}
	if v := GRef("gt1"); v.Kind() != KindGRef || v.RefGOid() != "gt1" || !v.IsRef() {
		t.Errorf("GRef = %v", v)
	}
	if v := Null(); !v.IsNull() || v.IsRef() {
		t.Errorf("Null = %v", v)
	}
	l := List(Int(1), Str("x"))
	if l.Kind() != KindList || len(l.Elems()) != 2 {
		t.Errorf("List = %v", l)
	}
}

func TestListCopiesElements(t *testing.T) {
	src := []Value{Int(1), Int(2)}
	l := List(src...)
	src[0] = Int(99)
	if !l.Elems()[0].Equal(Int(1)) {
		t.Error("List aliases its input slice")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(3), Float(3.0), true},
		{Float(3.5), Int(3), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("1"), Int(1), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Bool(true), Int(1), false},
		{Ref("a"), Ref("a"), true},
		{Ref("a"), GRef("a"), false},
		{List(Int(1)), List(Int(1)), true},
		{List(Int(1)), List(Int(2)), false},
		{List(Int(1)), List(Int(1), Int(2)), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(1), 1, true},
		{Int(2), Int(2), 0, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Int(1), 0, false},
		{Int(1), Null(), 0, false},
		{Str("a"), Int(1), 0, false},
		{Ref("a"), Ref("b"), 0, false},
		{List(Int(1)), List(Int(1)), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && sign(cmp) != c.cmp) {
			t.Errorf("%v.Compare(%v) = (%d,%v), want (%d,%v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

func TestValueWireSize(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Int(1), AttrWireSize},
		{Str("hello"), AttrWireSize},
		{Null(), 0},
		{Ref("x"), LOidWireSize},
		{GRef("x"), GOidWireSize},
		{List(Int(1), Ref("x")), AttrWireSize + LOidWireSize},
	}
	for _, c := range cases {
		if got := c.v.WireSize(); got != c.want {
			t.Errorf("WireSize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "-"},
		{Int(5), "5"},
		{Float(1.5), "1.5"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
		{Ref("t1"), "@t1"},
		{GRef("gt1"), "@@gt1"},
		{List(Int(1), Int(2)), "{1, 2}"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNewNormalizesNulls(t *testing.T) {
	o := New("s1", "Student", map[string]Value{
		"name": Str("John"),
		"age":  Null(),
		"sex":  {},
	})
	if _, ok := o.Attrs["age"]; ok {
		t.Error("null attribute survived New")
	}
	if _, ok := o.Attrs["sex"]; ok {
		t.Error("zero Value attribute survived New")
	}
	if !o.Attr("age").IsNull() {
		t.Error("Attr on missing attribute should be null")
	}
	if got := o.Attr("name"); !got.Equal(Str("John")) {
		t.Errorf("Attr(name) = %v", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := map[string]Value{"a": Int(1)}
	o := New("x", "C", in)
	in["a"] = Int(2)
	if !o.Attr("a").Equal(Int(1)) {
		t.Error("New aliases its input map")
	}
}

func TestObjectSetAndClone(t *testing.T) {
	o := New("s1", "Student", nil)
	o.Set("age", Int(30))
	if !o.Attr("age").Equal(Int(30)) {
		t.Error("Set failed")
	}
	cl := o.Clone()
	cl.Set("age", Int(40))
	if !o.Attr("age").Equal(Int(30)) {
		t.Error("Clone shares attribute map")
	}
	o.Set("age", Null())
	if _, ok := o.Attrs["age"]; ok {
		t.Error("Set(Null) should delete")
	}
	var empty Object
	empty.Set("a", Int(1))
	if !empty.Attr("a").Equal(Int(1)) {
		t.Error("Set on zero Object failed")
	}
}

func TestObjectProject(t *testing.T) {
	o := New("s1", "Student", map[string]Value{
		"name": Str("John"), "age": Int(31), "advisor": Ref("t1"),
	})
	p := o.Project([]string{"name", "advisor", "nonexistent"})
	if len(p.Attrs) != 2 {
		t.Fatalf("Project kept %d attrs, want 2", len(p.Attrs))
	}
	if p.LOid != "s1" || p.Class != "Student" {
		t.Error("Project lost identity")
	}
	if !p.Attr("age").IsNull() {
		t.Error("Project kept age")
	}
}

func TestObjectWireSize(t *testing.T) {
	o := New("s1", "Student", map[string]Value{
		"name": Str("John"), "age": Int(31), "advisor": Ref("t1"),
	})
	wantAll := LOidWireSize + 2*AttrWireSize + LOidWireSize
	if got := o.WireSize(nil); got != wantAll {
		t.Errorf("WireSize(nil) = %d, want %d", got, wantAll)
	}
	want := LOidWireSize + AttrWireSize
	if got := o.WireSize([]string{"name", "nope"}); got != want {
		t.Errorf("WireSize(name) = %d, want %d", got, want)
	}
}

func TestObjectAttrNamesSorted(t *testing.T) {
	o := New("x", "C", map[string]Value{"b": Int(1), "a": Int(2), "c": Int(3)})
	got := o.AttrNames()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AttrNames = %v, want %v", got, want)
	}
}

func TestObjectString(t *testing.T) {
	o := New("s1", "Student", map[string]Value{"name": Str("John"), "age": Int(31)})
	want := "Student[s1]{age: 31, name: John}"
	if got := o.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randomValue builds an arbitrary primitive value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Int(int64(r.Intn(100)))
	case 1:
		return Float(r.Float64() * 100)
	case 2:
		return Str(string(rune('a' + r.Intn(26))))
	case 3:
		return Bool(r.Intn(2) == 0)
	default:
		return Null()
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		return v.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		c1, ok1 := a.Compare(b)
		c2, ok2 := b.Compare(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareConsistentWithEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		cmp, ok := a.Compare(b)
		if !ok || cmp != 0 {
			return true
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueBinaryRoundTrip(t *testing.T) {
	values := []Value{
		Null(),
		Int(42), Int(-7),
		Float(3.25), Float(-0.5),
		Str(""), Str("hello world"),
		Bool(true), Bool(false),
		Ref("t1'"), GRef("gt4"),
		List(Int(1), Str("x"), List(Bool(true))),
		{},
	}
	for _, v := range values {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if got.Kind() != v.Kind() || (v.Kind() != 0 && !got.Equal(v)) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueUnmarshalErrors(t *testing.T) {
	var v Value
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if err := v.UnmarshalBinary([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("truncated int accepted")
	}
	if err := v.UnmarshalBinary([]byte{99}); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := v.UnmarshalBinary([]byte{byte(KindList), 9, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Error("corrupt list accepted")
	}
}
