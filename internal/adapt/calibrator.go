// Package adapt closes the feedback loop between execution and planning:
// a Calibrator ingests finished queries' measured profiles and maintains
// per-site observed cost rates (EWMA-smoothed multiples of the paper's
// Table 1 constants), and a Selector picks CA/BL/PL per query from the
// calibrated model, steering away from check-heavy plans when a peer site
// is degraded (breaker open, or repeatedly unavailable in the profiles).
//
// The paper chooses strategies from fixed Table 1 rates; heterogeneous
// federations drift from any fixed constants, so the calibrator re-derives
// each site's effective rates from what the site actually did: the profile
// records the measured microseconds a site spent (Profile.Phases) and the
// event counts it performed (Profile.IO), and their ratio over the modeled
// time Base.Work would predict is the site's observed slowdown factor.
package adapt

import (
	"sync"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/trace"
)

// Defaults for Config's zero values.
const (
	// DefaultAlpha weights a new observation against the running scale.
	DefaultAlpha = 0.3
	// DefaultMinScale / DefaultMaxScale clamp one observation's ratio so a
	// single outlier profile (cold cache, GC pause) cannot blow up the model.
	DefaultMinScale = 0.05
	DefaultMaxScale = 100
	// DefaultFailThreshold is the failure score above which Degraded reports
	// a site as "open". Scores move by Alpha per observation, so with the
	// default alpha a site must miss a few queries in a row to cross it.
	DefaultFailThreshold = 0.5
)

// Config parameterizes a Calibrator. The zero value is usable: Table 1 base
// rates and the package defaults.
type Config struct {
	// Base is the uncalibrated rate set (the planner's Table 1 constants).
	// Zero means fabric.DefaultRates().
	Base fabric.Rates
	// Alpha is the EWMA weight of a new observation, in (0,1]. Zero means
	// DefaultAlpha.
	Alpha float64
	// MinScale and MaxScale clamp a single observation's measured/modeled
	// ratio. Zero means the package defaults.
	MinScale float64
	MaxScale float64
	// Coordinator is skipped during rate calibration: the coordinating
	// site's spans cover the whole fan-out (its CA "O" span spans every
	// component site's work, its rpc spans include round trips), so its
	// measured-over-modeled ratio does not describe its local speed.
	Coordinator object.SiteID
	// FailThreshold is the failure score above which a site counts as
	// degraded. Zero means DefaultFailThreshold.
	FailThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Base == (fabric.Rates{}) {
		c.Base = fabric.DefaultRates()
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MinScale <= 0 {
		c.MinScale = DefaultMinScale
	}
	if c.MaxScale <= 0 {
		c.MaxScale = DefaultMaxScale
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	return c
}

// Calibrator learns per-site effective rates from finished queries'
// profiles. It implements planner.RateModel, so planner.EstimatesWith can
// predict strategy costs under the observed rates instead of the global
// constants. Safe for concurrent use.
type Calibrator struct {
	cfg Config

	mu     sync.Mutex
	scales map[object.SiteID]float64 // EWMA of measured/modeled time ratio
	fails  map[object.SiteID]float64 // EWMA of "was unavailable this query"
	seen   int                       // profiles ingested
}

var _ planner.RateModel = (*Calibrator)(nil)

// NewCalibrator returns a calibrator with the given configuration.
func NewCalibrator(cfg Config) *Calibrator {
	return &Calibrator{
		cfg:    cfg.withDefaults(),
		scales: make(map[object.SiteID]float64),
		fails:  make(map[object.SiteID]float64),
	}
}

// Base returns the uncalibrated rate set the scales multiply.
func (c *Calibrator) Base() fabric.Rates { return c.cfg.Base }

// Observe ingests one finished query's profile: for every component site
// with measured event counts it updates the site's rate scale, and for
// every site the query touched (or failed to reach) it updates the site's
// failure score.
func (c *Calibrator) Observe(p *trace.Profile) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen++

	for site, io := range p.IO {
		sid := object.SiteID(site)
		if sid == c.cfg.Coordinator || site == planner.CoordSite {
			continue
		}
		// Modeled local time for what the site measurably did. Net bytes are
		// excluded: transfer time is a property of the shared medium, and the
		// phase spans do not attribute it separably.
		modeled := c.cfg.Base.Work(io.DiskBytes, io.CPUOps, 0)
		// Measured local time: the site's largest phase attribution. Max, not
		// sum — a "PO" span contributes its full duration to both phases, so
		// summing would double-count inseparable work.
		measured := 0.0
		for _, ph := range []string{"O", "I", "P"} {
			if v := p.Phases.Get(site, ph); v > measured {
				measured = v
			}
		}
		if modeled <= 0 || measured <= 0 {
			continue
		}
		ratio := measured / modeled
		if ratio < c.cfg.MinScale {
			ratio = c.cfg.MinScale
		}
		if ratio > c.cfg.MaxScale {
			ratio = c.cfg.MaxScale
		}
		if prev, ok := c.scales[sid]; ok {
			c.scales[sid] = (1-c.cfg.Alpha)*prev + c.cfg.Alpha*ratio
		} else {
			c.scales[sid] = ratio
		}
	}

	// Failure tracking: a site listed unavailable moves toward 1, a site
	// that served the query decays toward 0. This gives the selector a
	// degradation signal even where no circuit breaker runs (the simulated
	// runtime's kill faults).
	down := make(map[object.SiteID]bool, len(p.Unavailable))
	for _, s := range p.Unavailable {
		down[object.SiteID(s)] = true
	}
	touched := make(map[object.SiteID]bool, len(p.Sites))
	for _, s := range p.Sites {
		touched[s] = true
	}
	for s := range down {
		touched[s] = true
	}
	for sid := range touched {
		if sid == c.cfg.Coordinator || string(sid) == planner.CoordSite {
			continue
		}
		target := 0.0
		if down[sid] {
			target = 1
		}
		if prev, ok := c.fails[sid]; ok {
			c.fails[sid] = (1-c.cfg.Alpha)*prev + c.cfg.Alpha*target
		} else {
			c.fails[sid] = target
		}
	}
}

// SiteRates implements planner.RateModel: the base rates scaled by the
// site's observed slowdown, or the base rates unchanged for a site (or the
// coordinator placeholder) never observed.
func (c *Calibrator) SiteRates(site object.SiteID) fabric.Rates {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.scales[site]; ok {
		return c.cfg.Base.Scale(s)
	}
	return c.cfg.Base
}

// Scales returns a copy of the per-site observed slowdown factors.
func (c *Calibrator) Scales() map[object.SiteID]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[object.SiteID]float64, len(c.scales))
	for k, v := range c.scales {
		out[k] = v
	}
	return out
}

// Degraded returns the sites whose failure score exceeds the threshold,
// mapped to the breaker-state vocabulary ("open") so it merges with live
// breaker health in the selector.
func (c *Calibrator) Degraded() map[object.SiteID]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[object.SiteID]string)
	for k, v := range c.fails {
		if v > c.cfg.FailThreshold {
			out[k] = "open"
		}
	}
	return out
}

// Observations returns the number of profiles ingested.
func (c *Calibrator) Observations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}
