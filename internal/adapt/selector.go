package adapt

import (
	"strings"
	"sync"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/trace"
)

// Penalty weights per breaker state: an open breaker doubles a plan's
// check-time share, a half-open one adds it once. CA ships no checks
// (CheckMicros zero) and is never penalized; PL checks every object and is
// demoted below BL when a peer is suspect — BL ships fewer checks, which is
// exactly the degradation-aware fallback the selector encodes.
const (
	penaltyOpen     = 2.0
	penaltyHalfOpen = 1.0
)

// Health reports live per-site breaker states ("closed", "half-open",
// "open"), e.g. remote.Coordinator.BreakerStates. Nil when no breakers run
// (in-process and simulated executions); the calibrator's failure scores
// then carry the degradation signal alone.
type Health func() map[object.SiteID]string

// Decision records one adaptive choice for introspection (EXPLAIN).
type Decision struct {
	// Alg is the chosen strategy.
	Alg exec.Algorithm
	// Estimates are the calibrated predictions the choice ranked, in
	// exec.Algorithms() order.
	Estimates []planner.Estimate
	// Penalized is each strategy's degradation-penalized response time, the
	// value actually minimized.
	Penalized map[exec.Algorithm]float64
	// Health is the merged per-site state the penalty was computed from
	// (live breakers and calibrator failure scores).
	Health map[object.SiteID]string
	// Scales is the calibrator's per-site slowdown snapshot at choice time.
	Scales map[object.SiteID]float64
}

// Selector picks a concrete strategy per query from the calibrated cost
// model and feeds finished profiles back into the calibrator. It implements
// exec.Selector and is safe for concurrent use.
type Selector struct {
	cat    *planner.Catalog
	cal    *Calibrator
	health Health

	mu   sync.Mutex
	last *Decision
}

var _ exec.Selector = (*Selector)(nil)

// NewSelector builds a selector choosing over the given catalog with the
// given calibrator. health may be nil.
func NewSelector(cat *planner.Catalog, cal *Calibrator, health Health) *Selector {
	if cal == nil {
		cal = NewCalibrator(Config{})
	}
	return &Selector{cat: cat, cal: cal, health: health}
}

// Calibrator returns the selector's calibrator.
func (s *Selector) Calibrator() *Calibrator { return s.cal }

// Select implements exec.Selector: estimate CA/BL/PL under the calibrated
// per-site rates, penalize check-heavy plans by degraded-site state, and
// return the cheapest.
func (s *Selector) Select(b *query.Bound) exec.Algorithm {
	ests := planner.EstimatesWith(s.cat, b, s.cal)
	health := s.cal.Degraded()
	if s.health != nil {
		for site, state := range s.health() {
			if severity(state) > severity(health[site]) {
				health[site] = state
			}
		}
	}
	best, penalized := Rank(ests, b.InvolvedSites(), health)

	s.mu.Lock()
	s.last = &Decision{
		Alg:       best.Alg,
		Estimates: ests,
		Penalized: penalized,
		Health:    health,
		Scales:    s.cal.Scales(),
	}
	s.mu.Unlock()
	return best.Alg
}

// Observe implements exec.Selector.
func (s *Selector) Observe(p *trace.Profile) { s.cal.Observe(p) }

// LastDecision returns the most recent choice, nil before the first Select.
func (s *Selector) LastDecision() *Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Rank orders estimates by degradation-penalized response time and returns
// the winner plus every strategy's penalized score. The penalty weight is
// the worst state among the query's involved sites: a plan's CheckMicros —
// the work it ships to peer sites for assistant checking — is added w times
// to its response prediction, so when any involved peer is open or
// half-open, check-light plans (BL over PL, CA over both) win sooner. Pure
// function: no calibrator state, directly testable.
func Rank(ests []planner.Estimate, sites []object.SiteID, health map[object.SiteID]string) (planner.Estimate, map[exec.Algorithm]float64) {
	w := 0.0
	for _, site := range sites {
		switch state := health[site]; {
		case state == "open":
			w = penaltyOpen
		case state == "half-open" || strings.HasPrefix(state, "suspect"):
			// A replica whose mappings diverged ("suspect(C1,...)", from the
			// anti-entropy tracker) is reachable but unconfirmed — the same
			// caution as a half-open breaker: prefer check-light plans.
			if w < penaltyHalfOpen {
				w = penaltyHalfOpen
			}
		}
		if w == penaltyOpen {
			break
		}
	}
	penalized := make(map[exec.Algorithm]float64, len(ests))
	var best planner.Estimate
	bestScore := 0.0
	for i, est := range ests {
		score := est.ResponseMicros + w*est.CheckMicros
		penalized[est.Alg] = score
		if i == 0 || score < bestScore ||
			(score == bestScore && est.TotalMicros < best.TotalMicros) {
			best, bestScore = est, score
		}
	}
	return best, penalized
}

func severity(state string) int {
	switch {
	case state == "open":
		return 2
	case state == "half-open", strings.HasPrefix(state, "suspect"):
		return 1
	default:
		return 0
	}
}
