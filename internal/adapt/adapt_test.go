package adapt

import (
	"testing"

	"github.com/hetfed/hetfed/internal/cost"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/trace"
)

func schoolSelector(t *testing.T, cal *Calibrator, health Health) (*Selector, *query.Bound) {
	t.Helper()
	fx := school.New()
	cat := planner.BuildCatalog(fx.Global, fx.Databases, fx.Mapping)
	b := query.MustBind(query.MustParse(school.Q1), fx.Global)
	return NewSelector(cat, cal, health), b
}

// siteProfile synthesizes a finished query's profile in which the given
// site measurably ran ratio× slower than the base rates predict for the
// events it performed.
func siteProfile(site string, ratio float64, base fabric.Rates) *trace.Profile {
	io := trace.SiteIO{DiskBytes: 1000, CPUOps: 100}
	p := &trace.Profile{
		ID: "synthetic", Alg: "PL", Status: trace.StatusOK,
		Sites:  []object.SiteID{object.SiteID(site)},
		Phases: &cost.Breakdown{},
		IO:     map[string]trace.SiteIO{site: io},
	}
	p.Phases.Add(site, "O", ratio*base.Work(io.DiskBytes, io.CPUOps, 0))
	return p
}

func TestCalibratorSiteRates(t *testing.T) {
	base := fabric.DefaultRates()
	cal := NewCalibrator(Config{Coordinator: "G"})

	// Unobserved site: base rates unchanged.
	if got := cal.SiteRates("DB1"); got != base {
		t.Errorf("unobserved rates = %+v", got)
	}

	// First observation sets the scale directly: ratio 4 → 4× base.
	cal.Observe(siteProfile("DB1", 4, base))
	want := base.Scale(4)
	if got := cal.SiteRates("DB1"); !closeRates(got, want) {
		t.Errorf("calibrated rates = %+v, want %+v", got, want)
	}
	if s := cal.Scales()["DB1"]; s < 3.99 || s > 4.01 {
		t.Errorf("scale = %g, want 4", s)
	}

	// The coordinator site is never calibrated: its spans cover the fan-out.
	cal.Observe(siteProfile("G", 9, base))
	if got := cal.SiteRates("G"); got != base {
		t.Errorf("coordinator rates calibrated: %+v", got)
	}

	// An absurd single observation is clamped to MaxScale.
	cal2 := NewCalibrator(Config{})
	cal2.Observe(siteProfile("DB2", 1e6, base))
	if s := cal2.Scales()["DB2"]; s != DefaultMaxScale {
		t.Errorf("clamped scale = %g, want %d", s, DefaultMaxScale)
	}
}

func TestCalibratorEWMA(t *testing.T) {
	base := fabric.DefaultRates()
	cal := NewCalibrator(Config{Alpha: 0.5})
	cal.Observe(siteProfile("DB1", 1, base))
	cal.Observe(siteProfile("DB1", 5, base))
	// 0.5·1 + 0.5·5 = 3.
	if s := cal.Scales()["DB1"]; s < 2.99 || s > 3.01 {
		t.Errorf("EWMA scale = %g, want 3", s)
	}
}

// TestRankPenalty pins the fallback ladder on synthetic estimates: healthy
// picks the fastest plan (PL), a half-open peer demotes PL below BL (BL
// ships fewer checks), an open peer pushes past both to check-free CA.
func TestRankPenalty(t *testing.T) {
	ests := []planner.Estimate{
		{Alg: exec.CA, ResponseMicros: 170, TotalMicros: 300, CheckMicros: 0},
		{Alg: exec.BL, ResponseMicros: 120, TotalMicros: 250, CheckMicros: 30},
		{Alg: exec.PL, ResponseMicros: 100, TotalMicros: 280, CheckMicros: 60},
	}
	sites := []object.SiteID{"DB1", "DB2"}

	cases := []struct {
		name   string
		health map[object.SiteID]string
		want   exec.Algorithm
	}{
		{"healthy", nil, exec.PL},
		{"half-open", map[object.SiteID]string{"DB2": "half-open"}, exec.BL},
		{"open", map[object.SiteID]string{"DB2": "open"}, exec.CA},
		// A replica with suspect mapping classes (anti-entropy divergence)
		// weighs like a half-open breaker: reachable but unconfirmed.
		{"suspect", map[object.SiteID]string{"DB2": "suspect(course) round=3 repaired=0B"}, exec.BL},
		// A degraded site outside the query's fan-out is irrelevant.
		{"unrelated-open", map[object.SiteID]string{"DB9": "open"}, exec.PL},
	}
	for _, tc := range cases {
		best, penalized := Rank(ests, sites, tc.health)
		if best.Alg != tc.want {
			t.Errorf("%s: chose %v, want %v (penalized %v)", tc.name, best.Alg, tc.want, penalized)
		}
		if len(penalized) != 3 {
			t.Errorf("%s: penalized map %v", tc.name, penalized)
		}
	}

	// Penalized scores under half-open: resp + 1·check.
	_, pen := Rank(ests, sites, map[object.SiteID]string{"DB1": "half-open"})
	if pen[exec.BL] != 150 || pen[exec.PL] != 160 || pen[exec.CA] != 170 {
		t.Errorf("half-open scores = %v", pen)
	}
}

// TestConvergenceFlipsStrategy: the selector starts at the static choice
// (PL for school Q1 under Table 1 rates) and must flip once the calibrator
// has seen a few profiles showing a site running far from the constants.
// Slowing root site DB1 makes CA cheapest; slowing DB2 makes BL cheapest
// (probed against the planner's model, the same ground the static planner
// chooses on).
func TestConvergenceFlipsStrategy(t *testing.T) {
	cases := []struct {
		slowSite string
		want     exec.Algorithm
	}{
		{"DB1", exec.CA},
		{"DB2", exec.BL},
	}
	for _, tc := range cases {
		cal := NewCalibrator(Config{Coordinator: "G"})
		sel, b := schoolSelector(t, cal, nil)

		if got := sel.Select(b); got != exec.PL {
			t.Fatalf("static choice = %v, want PL", got)
		}

		// One on-model observation first, so the flip exercises EWMA movement
		// rather than the first-observation shortcut.
		sel.Observe(siteProfile(tc.slowSite, 1, cal.Base()))
		const maxObs = 5
		flipped := -1
		for i := 1; i <= maxObs; i++ {
			sel.Observe(siteProfile(tc.slowSite, 8, cal.Base()))
			if sel.Select(b) == tc.want {
				flipped = i
				break
			}
		}
		if flipped < 0 {
			t.Fatalf("slow %s: no flip to %v within %d observations (scales %v, last %+v)",
				tc.slowSite, tc.want, maxObs, cal.Scales(), sel.LastDecision())
		}
		t.Logf("slow %s: flipped to %v after %d slow observations (scale %.2f)",
			tc.slowSite, tc.want, flipped, cal.Scales()[object.SiteID(tc.slowSite)])

		d := sel.LastDecision()
		if d == nil || d.Alg != tc.want || len(d.Estimates) != 3 {
			t.Errorf("decision = %+v", d)
		}
	}
}

// TestUnavailableSiteBiasesSelection: profiles reporting a site unavailable
// (the simulated runtime's kill faults — no breaker runs there) must bias
// selection away from check-heavy plans. For school Q1 the check target DB3
// going dark makes check-free CA win over PL/BL.
func TestUnavailableSiteBiasesSelection(t *testing.T) {
	cal := NewCalibrator(Config{Coordinator: "G"})
	sel, b := schoolSelector(t, cal, nil)

	if got := sel.Select(b); got != exec.PL {
		t.Fatalf("static choice = %v, want PL", got)
	}
	p := &trace.Profile{
		ID: "degraded", Alg: "PL", Status: trace.StatusDegraded,
		Sites:       []object.SiteID{"DB1", "DB2", "DB3"},
		Unavailable: []string{"DB3"},
		Phases:      &cost.Breakdown{},
	}
	sel.Observe(p)
	if got := sel.Select(b); got != exec.CA {
		t.Errorf("after unavailability: chose %v, want CA (decision %+v)", got, sel.LastDecision())
	}
	d := sel.LastDecision()
	if d.Health["DB3"] != "open" {
		t.Errorf("health = %v, want DB3 open", d.Health)
	}

	// Recovery: the failure score decays as DB3 serves queries again.
	for i := 0; i < 20; i++ {
		ok := &trace.Profile{
			ID: "ok", Alg: "PL", Status: trace.StatusOK,
			Sites:  []object.SiteID{"DB1", "DB2", "DB3"},
			Phases: &cost.Breakdown{},
		}
		sel.Observe(ok)
	}
	if got := sel.Select(b); got != exec.PL {
		t.Errorf("after recovery: chose %v, want PL (health %v)", got, sel.LastDecision().Health)
	}
}

// TestBreakerHealthBias: live breaker states reported by the health hook
// penalize exactly like calibrator-derived degradation.
func TestBreakerHealthBias(t *testing.T) {
	state := map[object.SiteID]string{}
	sel, b := schoolSelector(t, NewCalibrator(Config{Coordinator: "G"}), func() map[object.SiteID]string {
		return state
	})

	if got := sel.Select(b); got != exec.PL {
		t.Fatalf("static choice = %v, want PL", got)
	}
	state["DB3"] = "half-open"
	half := sel.Select(b)
	state["DB3"] = "open"
	open := sel.Select(b)
	if open != exec.CA {
		t.Errorf("open breaker: chose %v, want CA", open)
	}
	// Under any degradation the chosen plan must not carry more check work
	// than the healthy winner.
	d := sel.LastDecision()
	var healthyPL, chosen planner.Estimate
	for _, e := range d.Estimates {
		if e.Alg == exec.PL {
			healthyPL = e
		}
		if e.Alg == open {
			chosen = e
		}
	}
	if chosen.CheckMicros >= healthyPL.CheckMicros {
		t.Errorf("open-breaker choice %v has CheckMicros %.0f ≥ PL's %.0f",
			open, chosen.CheckMicros, healthyPL.CheckMicros)
	}
	_ = half
	state["DB3"] = "closed"
	if got := sel.Select(b); got != exec.PL {
		t.Errorf("closed breaker: chose %v, want PL", got)
	}
}

func closeRates(a, b fabric.Rates) bool {
	close := func(x, y float64) bool {
		d := x - y
		return d < 1e-9 && d > -1e-9
	}
	return close(a.DiskPerByte, b.DiskPerByte) &&
		close(a.NetPerByte, b.NetPerByte) &&
		close(a.CPUPerOp, b.CPUPerOp)
}
