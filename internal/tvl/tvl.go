// Package tvl implements Kleene's strong three-valued logic, the evaluation
// algebra for predicates over missing data (Codd's maybe semantics, ref [7]
// of the paper). A predicate over an object with missing attribute values
// evaluates to Unknown; a conjunctive query then classifies the object as a
// certain result (True), a maybe result (Unknown), or a non-result (False).
package tvl

// Truth is a three-valued truth value.
type Truth int

// The three truth values. The zero value is not a valid Truth so that
// uninitialized verdicts are detectable.
const (
	False Truth = iota + 1
	Unknown
	True
)

// String returns the truth value name.
func (t Truth) String() string {
	switch t {
	case False:
		return "false"
	case Unknown:
		return "unknown"
	case True:
		return "true"
	default:
		return "invalid"
	}
}

// Of converts a Boolean to a Truth.
func Of(b bool) Truth {
	if b {
		return True
	}
	return False
}

// And returns the Kleene conjunction: False dominates, then Unknown.
func And(a, b Truth) Truth {
	if a < b {
		return a
	}
	return b
}

// Or returns the Kleene disjunction: True dominates, then Unknown.
func Or(a, b Truth) Truth {
	if a > b {
		return a
	}
	return b
}

// Not returns the Kleene negation; Unknown stays Unknown.
func Not(a Truth) Truth {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return a
	}
}

// All folds And over the arguments; the empty conjunction is True.
func All(ts ...Truth) Truth {
	acc := True
	for _, t := range ts {
		acc = And(acc, t)
		if acc == False {
			return False
		}
	}
	return acc
}

// Any folds Or over the arguments; the empty disjunction is False.
func Any(ts ...Truth) Truth {
	acc := False
	for _, t := range ts {
		acc = Or(acc, t)
		if acc == True {
			return True
		}
	}
	return acc
}
