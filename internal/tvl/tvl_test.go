package tvl

import (
	"testing"
	"testing/quick"
)

var all = []Truth{False, Unknown, True}

func TestString(t *testing.T) {
	cases := map[Truth]string{
		False:    "false",
		Unknown:  "unknown",
		True:     "true",
		Truth(0): "invalid",
	}
	for tr, want := range cases {
		if got := tr.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", tr, got, want)
		}
	}
}

func TestOf(t *testing.T) {
	if Of(true) != True || Of(false) != False {
		t.Error("Of is wrong")
	}
}

func TestAndTruthTable(t *testing.T) {
	want := map[[2]Truth]Truth{
		{True, True}:       True,
		{True, Unknown}:    Unknown,
		{True, False}:      False,
		{Unknown, Unknown}: Unknown,
		{Unknown, False}:   False,
		{False, False}:     False,
	}
	for args, w := range want {
		if got := And(args[0], args[1]); got != w {
			t.Errorf("And(%v,%v) = %v, want %v", args[0], args[1], got, w)
		}
		if got := And(args[1], args[0]); got != w {
			t.Errorf("And(%v,%v) = %v, want %v", args[1], args[0], got, w)
		}
	}
}

func TestOrTruthTable(t *testing.T) {
	want := map[[2]Truth]Truth{
		{True, True}:       True,
		{True, Unknown}:    True,
		{True, False}:      True,
		{Unknown, Unknown}: Unknown,
		{Unknown, False}:   Unknown,
		{False, False}:     False,
	}
	for args, w := range want {
		if got := Or(args[0], args[1]); got != w {
			t.Errorf("Or(%v,%v) = %v, want %v", args[0], args[1], got, w)
		}
		if got := Or(args[1], args[0]); got != w {
			t.Errorf("Or(%v,%v) = %v, want %v", args[1], args[0], got, w)
		}
	}
}

func TestNot(t *testing.T) {
	if Not(True) != False || Not(False) != True || Not(Unknown) != Unknown {
		t.Error("Not truth table wrong")
	}
}

func TestAllAny(t *testing.T) {
	if All() != True {
		t.Error("empty All should be True")
	}
	if Any() != False {
		t.Error("empty Any should be False")
	}
	if All(True, Unknown, True) != Unknown {
		t.Error("All with Unknown")
	}
	if All(True, Unknown, False) != False {
		t.Error("All with False")
	}
	if Any(False, Unknown) != Unknown {
		t.Error("Any with Unknown")
	}
	if Any(False, Unknown, True) != True {
		t.Error("Any with True")
	}
}

func pick(i uint8) Truth { return all[int(i)%len(all)] }

func TestDeMorganProperty(t *testing.T) {
	f := func(i, j uint8) bool {
		a, b := pick(i), pick(j)
		return Not(And(a, b)) == Or(Not(a), Not(b)) &&
			Not(Or(a, b)) == And(Not(a), Not(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociativityProperty(t *testing.T) {
	f := func(i, j, k uint8) bool {
		a, b, c := pick(i), pick(j), pick(k)
		return And(And(a, b), c) == And(a, And(b, c)) &&
			Or(Or(a, b), c) == Or(a, Or(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributivityProperty(t *testing.T) {
	f := func(i, j, k uint8) bool {
		a, b, c := pick(i), pick(j), pick(k)
		return And(a, Or(b, c)) == Or(And(a, b), And(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleNegationProperty(t *testing.T) {
	f := func(i uint8) bool {
		a := pick(i)
		return Not(Not(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
