package school

import (
	"testing"

	"github.com/hetfed/hetfed/internal/object"
)

func TestFixtureAssembles(t *testing.T) {
	fx := New()
	if fx.Global == nil || fx.Mapping == nil {
		t.Fatal("incomplete fixture")
	}
	if len(fx.Databases) != 3 {
		t.Fatalf("databases = %d", len(fx.Databases))
	}
}

// TestFigure4ObjectCounts pins the instance population of Figure 4.
func TestFigure4ObjectCounts(t *testing.T) {
	fx := New()
	counts := map[object.SiteID]map[string]int{
		"DB1": {"Student": 3, "Teacher": 3, "Department": 2},
		"DB2": {"Student": 3, "Teacher": 2, "Address": 2},
		"DB3": {"Teacher": 2, "Department": 3},
	}
	for site, classes := range counts {
		db := fx.Databases[site]
		for class, want := range classes {
			if got := db.Extent(class).Len(); got != want {
				t.Errorf("%s@%s: %d objects, want %d", class, site, got, want)
			}
		}
	}
}

// TestFigure5MappingShape pins the mapping-table population of Figure 5.
func TestFigure5MappingShape(t *testing.T) {
	fx := New()
	want := map[string][2]int{ // class -> {entities, bindings}
		"Student":    {5, 6},
		"Teacher":    {4, 7},
		"Department": {3, 5},
		"Address":    {2, 2},
	}
	for class, w := range want {
		tab := fx.Mapping.Table(class)
		if tab.Len() != w[0] || tab.Bindings() != w[1] {
			t.Errorf("%s: %d entities / %d bindings, want %d / %d",
				class, tab.Len(), tab.Bindings(), w[0], w[1])
		}
	}
}

// TestPaperNulls pins the null values the paper's narrative depends on:
// s1's sex, t2's department, d2”\'s location.
func TestPaperNulls(t *testing.T) {
	fx := New()
	if !fx.Databases["DB1"].Extent("Student").Get("s1").Attr("sex").IsNull() {
		t.Error("s1.sex should be null")
	}
	if !fx.Databases["DB1"].Extent("Teacher").Get("t2").Attr("department").IsNull() {
		t.Error("t2.department should be null")
	}
	if !fx.Databases["DB3"].Extent("Department").Get("d2''").Attr("location").IsNull() {
		t.Error("d2''.location should be null")
	}
}

func TestQ1Constant(t *testing.T) {
	if Q1 == "" || len(Sites) != 3 {
		t.Error("fixture constants wrong")
	}
}
