// Package school reproduces the paper's running example (Figures 1–5): three
// component object databases DB1, DB2 and DB3 storing personal information
// of the same school, their integration into a global schema, the object
// instances, and the GOid mapping tables.
//
// The fixture is used by tests, benchmarks and examples; the expected
// answers for the paper's query Q1 are a certain result (Hedy, Kelly) and a
// maybe result (Tony, Haley).
package school

import (
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// Q1 is the paper's example query (Figure 3(a)) in the SQL/X-like syntax of
// package query: the students living in Taipei whose advisors are teachers
// in the CS department and specialize in database.
const Q1 = `select name, advisor.name from Student ` +
	`where address.city = "Taipei" and advisor.speciality = "database" ` +
	`and advisor.department.name = "CS"`

// Fixture bundles the whole example federation.
type Fixture struct {
	Schemas   map[object.SiteID]*schema.Schema
	Global    *schema.Global
	Databases map[object.SiteID]*store.Database
	Mapping   *gmap.Tables
}

// Sites are the component database sites of the example.
var Sites = []object.SiteID{"DB1", "DB2", "DB3"}

// Schemas builds the three component schemas of Figure 1.
func Schemas() map[object.SiteID]*schema.Schema {
	db1 := schema.NewSchema("DB1")
	db1.MustAddClass(schema.MustClass("Student", []schema.Attribute{
		schema.Prim("s-no", object.KindInt),
		schema.Prim("name", object.KindString),
		schema.Prim("age", object.KindInt),
		schema.Complex("advisor", "Teacher"),
		schema.Prim("sex", object.KindString),
	}, "s-no"))
	db1.MustAddClass(schema.MustClass("Teacher", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Complex("department", "Department"),
	}, "name"))
	db1.MustAddClass(schema.MustClass("Department", []schema.Attribute{
		schema.Prim("name", object.KindString),
	}, "name"))

	db2 := schema.NewSchema("DB2")
	db2.MustAddClass(schema.MustClass("Student", []schema.Attribute{
		schema.Prim("s-no", object.KindInt),
		schema.Prim("name", object.KindString),
		schema.Prim("sex", object.KindString),
		schema.Complex("address", "Address"),
		schema.Complex("advisor", "Teacher"),
	}, "s-no"))
	db2.MustAddClass(schema.MustClass("Teacher", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Prim("speciality", object.KindString),
	}, "name"))
	db2.MustAddClass(schema.MustClass("Address", []schema.Attribute{
		schema.Prim("city", object.KindString),
		schema.Prim("street", object.KindString),
		schema.Prim("zipcode", object.KindInt),
	}, "city", "street"))

	db3 := schema.NewSchema("DB3")
	db3.MustAddClass(schema.MustClass("Department", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Prim("location", object.KindString),
	}, "name"))
	db3.MustAddClass(schema.MustClass("Teacher", []schema.Attribute{
		schema.Prim("name", object.KindString),
		schema.Complex("department", "Department"),
	}, "name"))

	return map[object.SiteID]*schema.Schema{"DB1": db1, "DB2": db2, "DB3": db3}
}

// Correspondences declares which constituent classes form each global class
// (the Figure 2 integration).
func Correspondences() []schema.Correspondence {
	return []schema.Correspondence{
		{GlobalClass: "Student", Members: []schema.Constituent{
			{Site: "DB1", Class: "Student"}, {Site: "DB2", Class: "Student"},
		}},
		{GlobalClass: "Teacher", Members: []schema.Constituent{
			{Site: "DB1", Class: "Teacher"}, {Site: "DB2", Class: "Teacher"}, {Site: "DB3", Class: "Teacher"},
		}},
		{GlobalClass: "Department", Members: []schema.Constituent{
			{Site: "DB1", Class: "Department"}, {Site: "DB3", Class: "Department"},
		}},
		{GlobalClass: "Address", Members: []schema.Constituent{
			{Site: "DB2", Class: "Address"},
		}},
	}
}

// Databases builds fresh copies of the Figure 4 object instances.
func Databases(schemas map[object.SiteID]*schema.Schema) map[object.SiteID]*store.Database {
	db1 := store.MustNewDatabase(schemas["DB1"])
	db1.MustInsert(object.New("d1", "Department", map[string]object.Value{
		"name": object.Str("CS"),
	}))
	db1.MustInsert(object.New("d2", "Department", map[string]object.Value{
		"name": object.Str("EE"),
	}))
	db1.MustInsert(object.New("t1", "Teacher", map[string]object.Value{
		"name": object.Str("Jeffery"), "department": object.Ref("d1"),
	}))
	db1.MustInsert(object.New("t2", "Teacher", map[string]object.Value{
		"name": object.Str("Abel"), // department is null (Figure 4(a))
	}))
	db1.MustInsert(object.New("t3", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"), "department": object.Ref("d1"),
	}))
	db1.MustInsert(object.New("s1", "Student", map[string]object.Value{
		"s-no": object.Int(804301), "name": object.Str("John"), "age": object.Int(31),
		"advisor": object.Ref("t1"), // sex is null
	}))
	db1.MustInsert(object.New("s2", "Student", map[string]object.Value{
		"s-no": object.Int(798302), "name": object.Str("Tony"), "age": object.Int(28),
		"advisor": object.Ref("t3"), "sex": object.Str("male"),
	}))
	db1.MustInsert(object.New("s3", "Student", map[string]object.Value{
		"s-no": object.Int(808301), "name": object.Str("Mary"), "age": object.Int(24),
		"advisor": object.Ref("t2"), "sex": object.Str("female"),
	}))

	db2 := store.MustNewDatabase(schemas["DB2"])
	db2.MustInsert(object.New("a1'", "Address", map[string]object.Value{
		"city": object.Str("Taipei"), "street": object.Str("Park"), "zipcode": object.Int(100),
	}))
	db2.MustInsert(object.New("a2'", "Address", map[string]object.Value{
		"city": object.Str("HsinChu"), "street": object.Str("Horber"), "zipcode": object.Int(800),
	}))
	db2.MustInsert(object.New("t1'", "Teacher", map[string]object.Value{
		"name": object.Str("Kelly"), "speciality": object.Str("database"),
	}))
	db2.MustInsert(object.New("t2'", "Teacher", map[string]object.Value{
		"name": object.Str("Jeffery"), "speciality": object.Str("network"),
	}))
	db2.MustInsert(object.New("s1'", "Student", map[string]object.Value{
		"s-no": object.Int(762315), "name": object.Str("Hedy"), "sex": object.Str("female"),
		"address": object.Ref("a1'"), "advisor": object.Ref("t1'"),
	}))
	db2.MustInsert(object.New("s2'", "Student", map[string]object.Value{
		"s-no": object.Int(804301), "name": object.Str("John"), "sex": object.Str("male"),
		"address": object.Ref("a2'"), "advisor": object.Ref("t2'"),
	}))
	db2.MustInsert(object.New("s3'", "Student", map[string]object.Value{
		"s-no": object.Int(828307), "name": object.Str("Fanny"), "sex": object.Str("female"),
		"address": object.Ref("a1'"), "advisor": object.Ref("t2'"),
	}))

	db3 := store.MustNewDatabase(schemas["DB3"])
	db3.MustInsert(object.New("d1''", "Department", map[string]object.Value{
		"name": object.Str("EE"), "location": object.Str("building E"),
	}))
	db3.MustInsert(object.New("d2''", "Department", map[string]object.Value{
		"name": object.Str("CS"), // location is null (Figure 4(c))
	}))
	db3.MustInsert(object.New("d3''", "Department", map[string]object.Value{
		"name": object.Str("PH"), "location": object.Str("building D"),
	}))
	db3.MustInsert(object.New("t1''", "Teacher", map[string]object.Value{
		"name": object.Str("Abel"), "department": object.Ref("d1''"),
	}))
	db3.MustInsert(object.New("t2''", "Teacher", map[string]object.Value{
		"name": object.Str("Kelly"), "department": object.Ref("d2''"),
	}))

	return map[object.SiteID]*store.Database{"DB1": db1, "DB2": db2, "DB3": db3}
}

// Mapping builds the Figure 5 GOid mapping tables.
func Mapping() *gmap.Tables {
	ts := gmap.NewTables()

	st := ts.Table("Student")
	st.MustBind("gs1", "DB1", "s1")
	st.MustBind("gs1", "DB2", "s2'")
	st.MustBind("gs2", "DB1", "s2")
	st.MustBind("gs3", "DB1", "s3")
	st.MustBind("gs4", "DB2", "s1'")
	st.MustBind("gs5", "DB2", "s3'")

	te := ts.Table("Teacher")
	te.MustBind("gt1", "DB1", "t1")
	te.MustBind("gt1", "DB2", "t2'")
	te.MustBind("gt2", "DB1", "t2")
	te.MustBind("gt2", "DB3", "t1''")
	te.MustBind("gt3", "DB1", "t3")
	te.MustBind("gt4", "DB2", "t1'")
	te.MustBind("gt4", "DB3", "t2''")

	de := ts.Table("Department")
	de.MustBind("gd1", "DB1", "d1")
	de.MustBind("gd1", "DB3", "d2''")
	de.MustBind("gd2", "DB1", "d2")
	de.MustBind("gd2", "DB3", "d1''")
	de.MustBind("gd3", "DB3", "d3''")

	ad := ts.Table("Address")
	ad.MustBind("ga1", "DB2", "a1'")
	ad.MustBind("ga2", "DB2", "a2'")

	return ts
}

// New assembles the full fixture: schemas, integrated global schema,
// databases and mapping tables. It panics on internal inconsistency, which
// would be a bug in the fixture itself.
func New() *Fixture {
	schemas := Schemas()
	g, err := schema.Integrate(schemas, Correspondences())
	if err != nil {
		panic(err)
	}
	dbs := Databases(schemas)
	for _, db := range dbs {
		if err := db.CheckRefs(); err != nil {
			panic(err)
		}
	}
	return &Fixture{
		Schemas:   schemas,
		Global:    g,
		Databases: dbs,
		Mapping:   Mapping(),
	}
}
