// Package isomer identifies isomeric objects — objects stored in different
// component databases that represent the same real-world entity — and builds
// the GOid mapping tables the query execution strategies depend on.
//
// This is the substrate behind reference [5] of the paper ("Identifying
// Object Isomerism in Multiple Databases"): the full strategy there matches
// entities through key equivalence; we implement exactly that. Objects of
// constituent classes of the same global class are isomeric when their
// entity-key attribute values are equal. Objects whose key is (partially)
// null match nothing and receive singleton entities.
package isomer

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/store"
)

// Matcher maintains the entity partition incrementally: it owns the GOid
// mapping tables plus a key index, so newly inserted objects can be matched
// against existing entities without rescanning the federation. It is the
// mapping authority the replicated-table maintenance mechanism (paper
// Section 4.1) distributes from.
type Matcher struct {
	global *schema.Global
	tables *gmap.Tables
	byKey  map[string]map[string]object.GOid // class -> key -> GOid
	seq    map[string]int
}

// NewMatcher returns an empty matcher for the global schema.
func NewMatcher(g *schema.Global) *Matcher {
	return &Matcher{
		global: g,
		tables: gmap.NewTables(),
		byKey:  make(map[string]map[string]object.GOid),
		seq:    make(map[string]int),
	}
}

// Tables exposes the live mapping tables (clone before mutating elsewhere).
func (m *Matcher) Tables() *gmap.Tables { return m.tables }

// Add matches a newly stored object against the existing entities of its
// global class (by entity-key equality) and binds it, returning its GOid.
// Objects with no usable key become singleton entities.
func (m *Matcher) Add(site object.SiteID, localClass string, o *object.Object) (object.GOid, error) {
	gc := m.global.GlobalFor(site, localClass)
	if gc == nil {
		return "", fmt.Errorf("isomer: class %s@%s is not integrated", localClass, site)
	}
	table := m.tables.Table(gc.Name)
	key, ok := entityKey(gc, o)
	var goid object.GOid
	switch {
	case !ok:
		goid = m.next(gc.Name)
	default:
		classKeys := m.byKey[gc.Name]
		if classKeys == nil {
			classKeys = make(map[string]object.GOid)
			m.byKey[gc.Name] = classKeys
		}
		if prev, seen := classKeys[key]; seen {
			goid = prev
		} else {
			goid = m.next(gc.Name)
			classKeys[key] = goid
		}
	}
	if err := table.Bind(goid, site, o.LOid); err != nil {
		return "", fmt.Errorf("isomer: %w", err)
	}
	return goid, nil
}

func (m *Matcher) next(class string) object.GOid {
	t := m.tables.Table(class)
	for {
		m.seq[class]++
		g := object.GOid(fmt.Sprintf("g%s:%d", class, m.seq[class]))
		if len(t.Locations(g)) == 0 {
			return g
		}
	}
}

// Load adds every stored object of every constituent class, scanning sites
// alphabetically and extents in insertion order (deterministic GOids).
func (m *Matcher) Load(dbs map[object.SiteID]*store.Database) error {
	for _, className := range m.global.ClassNames() {
		gc := m.global.Class(className)
		for _, site := range gc.Sites() {
			db := dbs[site]
			if db == nil {
				return fmt.Errorf("identify %s: no database for site %s", className, site)
			}
			localName := gc.Constituents[site]
			ext := db.Extent(localName)
			if ext == nil {
				return fmt.Errorf("identify %s: site %s lost class %s", className, site, localName)
			}
			var addErr error
			ext.Scan(func(o *object.Object) bool {
				_, addErr = m.Add(site, localName, o)
				return addErr == nil
			})
			if addErr != nil {
				return fmt.Errorf("identify %s: %w", className, addErr)
			}
		}
	}
	return nil
}

// Identify scans every constituent class of every global class in g and
// groups objects into entities by key equality, assigning one GOid per
// entity. GOids are deterministic: g<class>:<n> in order of first
// appearance, scanning sites alphabetically and extents in insertion order.
func Identify(g *schema.Global, dbs map[object.SiteID]*store.Database) (*gmap.Tables, error) {
	m := NewMatcher(g)
	if err := m.Load(dbs); err != nil {
		return nil, err
	}
	// Ensure every global class has a table, even when empty.
	for _, className := range g.ClassNames() {
		m.tables.Table(className)
	}
	return m.tables, nil
}

// entityKey encodes the object's entity-key attribute values. ok is false
// when the class declares no key or any key attribute is null for the
// object (such objects cannot be matched).
func entityKey(gc *schema.GlobalClass, o *object.Object) (string, bool) {
	if len(gc.Key) == 0 {
		return "", false
	}
	parts := make([]string, 0, len(gc.Key))
	for _, k := range gc.Key {
		v := o.Attr(k)
		if v.IsNull() || v.IsRef() {
			return "", false
		}
		parts = append(parts, v.Kind().String()+"="+v.String())
	}
	return strings.Join(parts, "\x1f"), true
}

// CountIsomeric returns, per global class, how many entities have more than
// one stored isomeric object — the R_iso statistic of the paper's Table 2.
func CountIsomeric(tables *gmap.Tables) map[string]int {
	out := make(map[string]int)
	for _, class := range tables.Classes() {
		t := tables.Table(class)
		n := 0
		for _, g := range t.GOids() {
			if len(t.Locations(g)) > 1 {
				n++
			}
		}
		out[class] = n
	}
	return out
}

// Validate cross-checks a mapping table group against the databases: every
// binding must point at a stored object of the right constituent class.
func Validate(g *schema.Global, dbs map[object.SiteID]*store.Database, tables *gmap.Tables) error {
	for _, class := range tables.Classes() {
		gc := g.Class(class)
		if gc == nil {
			return fmt.Errorf("validate: mapping table for unknown global class %q", class)
		}
		t := tables.Table(class)
		goids := t.GOids()
		sort.Slice(goids, func(i, j int) bool { return goids[i] < goids[j] })
		for _, goid := range goids {
			for _, loc := range t.Locations(goid) {
				db := dbs[loc.Site]
				if db == nil {
					return fmt.Errorf("validate %s: binding %s references unknown site %s", class, goid, loc.Site)
				}
				localName, ok := gc.Constituents[loc.Site]
				if !ok {
					return fmt.Errorf("validate %s: site %s holds no constituent class", class, loc.Site)
				}
				o, ok := db.Deref(loc.LOid)
				if !ok {
					return fmt.Errorf("validate %s: %s binds missing object %s@%s", class, goid, loc.LOid, loc.Site)
				}
				if o.Class != localName {
					return fmt.Errorf("validate %s: %s binds %s@%s of class %s, want %s",
						class, goid, loc.LOid, loc.Site, o.Class, localName)
				}
			}
		}
	}
	return nil
}

// Adopt primes the matcher from existing mapping tables and the stored
// objects they bind: the key index is rebuilt from the objects' entity
// keys, and freshly generated GOids skip names the tables already use. The
// matcher takes ownership of the tables (clone first to keep the original
// immutable).
func (m *Matcher) Adopt(dbs map[object.SiteID]*store.Database, tables *gmap.Tables) error {
	m.tables = tables
	for _, class := range tables.Classes() {
		gc := m.global.Class(class)
		if gc == nil {
			return fmt.Errorf("isomer: adopt: unknown global class %q", class)
		}
		t := tables.Table(class)
		for _, goid := range t.GOids() {
			for _, loc := range t.Locations(goid) {
				db := dbs[loc.Site]
				if db == nil {
					return fmt.Errorf("isomer: adopt: no database for site %s", loc.Site)
				}
				o, ok := db.Deref(loc.LOid)
				if !ok {
					return fmt.Errorf("isomer: adopt: %s binds missing object %s@%s", goid, loc.LOid, loc.Site)
				}
				key, ok := entityKey(gc, o)
				if !ok {
					continue
				}
				classKeys := m.byKey[class]
				if classKeys == nil {
					classKeys = make(map[string]object.GOid)
					m.byKey[class] = classKeys
				}
				if prev, seen := classKeys[key]; seen && prev != goid {
					return fmt.Errorf("isomer: adopt: key of %s@%s maps to both %s and %s",
						loc.LOid, loc.Site, prev, goid)
				}
				classKeys[key] = goid
			}
		}
	}
	return nil
}
