package isomer

import (
	"testing"

	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
)

// TestIdentifyReproducesFigure5 checks that key-based isomerism
// identification groups the school objects into exactly the entities of the
// paper's Figure 5 (GOid names differ; the partition must match).
func TestIdentifyReproducesFigure5(t *testing.T) {
	fx := school.New()
	tables, err := Identify(fx.Global, fx.Databases)
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}

	samePartition(t, fx.Mapping.Table("Student"), tables.Table("Student"))
	samePartition(t, fx.Mapping.Table("Teacher"), tables.Table("Teacher"))
	samePartition(t, fx.Mapping.Table("Department"), tables.Table("Department"))
	samePartition(t, fx.Mapping.Table("Address"), tables.Table("Address"))
}

// samePartition verifies both tables group the same objects together.
func samePartition(t *testing.T, want, got *gmap.Table) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Errorf("%s: %d entities, want %d", want.Class(), got.Len(), want.Len())
	}
	if want.Bindings() != got.Bindings() {
		t.Errorf("%s: %d bindings, want %d", want.Class(), got.Bindings(), want.Bindings())
	}
	for _, g := range want.GOids() {
		locs := want.Locations(g)
		first := locs[0]
		gotGOid, ok := got.GOidOf(first.Site, first.LOid)
		if !ok {
			t.Errorf("%s: %s@%s unmapped", want.Class(), first.LOid, first.Site)
			continue
		}
		gotLocs := got.Locations(gotGOid)
		if len(gotLocs) != len(locs) {
			t.Errorf("%s: entity of %s@%s has %d members, want %d",
				want.Class(), first.LOid, first.Site, len(gotLocs), len(locs))
			continue
		}
		for i := range locs {
			if gotLocs[i] != locs[i] {
				t.Errorf("%s: entity of %s@%s member %d = %v, want %v",
					want.Class(), first.LOid, first.Site, i, gotLocs[i], locs[i])
			}
		}
	}
}

func TestCountIsomeric(t *testing.T) {
	fx := school.New()
	counts := CountIsomeric(fx.Mapping)
	want := map[string]int{"Student": 1, "Teacher": 3, "Department": 2, "Address": 0}
	for class, n := range want {
		if counts[class] != n {
			t.Errorf("CountIsomeric[%s] = %d, want %d", class, counts[class], n)
		}
	}
}

func TestValidateAcceptsFixture(t *testing.T) {
	fx := school.New()
	if err := Validate(fx.Global, fx.Databases, fx.Mapping); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBadBindings(t *testing.T) {
	fx := school.New()

	bad := fx.Mapping.Clone()
	bad.Table("Student").MustBind("gs9", "DB1", "ghost")
	if err := Validate(fx.Global, fx.Databases, bad); err == nil {
		t.Error("binding to missing object accepted")
	}

	bad2 := fx.Mapping.Clone()
	bad2.Table("Student").MustBind("gs9", "DB3", "t1''") // DB3 has no Student
	if err := Validate(fx.Global, fx.Databases, bad2); err == nil {
		t.Error("binding at non-constituent site accepted")
	}

	bad3 := fx.Mapping.Clone()
	bad3.Table("Student").MustBind("gs9", "DB1", "t1") // wrong class
	if err := Validate(fx.Global, fx.Databases, bad3); err == nil {
		t.Error("binding of wrong class accepted")
	}

	bad4 := gmap.NewTables()
	bad4.Table("Nope").MustBind("g1", "DB1", "s1")
	if err := Validate(fx.Global, fx.Databases, bad4); err == nil {
		t.Error("table for unknown global class accepted")
	}
}

func TestIdentifyNullKeyGetsSingleton(t *testing.T) {
	fx := school.New()
	// Insert two students with null s-no in different sites; they must NOT
	// be matched to each other.
	fx.Databases["DB1"].MustInsert(object.New("sx", "Student", map[string]object.Value{
		"name": object.Str("Ghost"),
	}))
	fx.Databases["DB2"].MustInsert(object.New("sy'", "Student", map[string]object.Value{
		"name": object.Str("Ghost"),
	}))
	tables, err := Identify(fx.Global, fx.Databases)
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	st := tables.Table("Student")
	if len(st.IsomericsOf("DB1", "sx")) != 0 {
		t.Error("null-key object was matched")
	}
	if len(st.IsomericsOf("DB2", "sy'")) != 0 {
		t.Error("null-key object was matched")
	}
}

func TestIdentifyMissingDatabase(t *testing.T) {
	fx := school.New()
	delete(fx.Databases, "DB3")
	if _, err := Identify(fx.Global, fx.Databases); err == nil {
		t.Error("missing database accepted")
	}
}
