package query

import (
	"fmt"
	"sort"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/tvl"
)

// BoundPath is a path validated against the global schema.
type BoundPath struct {
	Path Path
	// Classes[i] is the global class of the object that evaluates step i;
	// Classes[0] is the range class. len(Classes) == len(Path).
	Classes []string
	// Attr is the attribute reached by the final step.
	Attr schema.Attribute
}

// BoundPredicate is a predicate whose path and literal have been validated.
type BoundPredicate struct {
	BoundPath
	Op      Op
	Literal object.Value
}

// Predicate reconstructs the plain AST predicate.
func (bp BoundPredicate) Predicate() Predicate {
	return Predicate{Path: bp.Path, Op: bp.Op, Literal: bp.Literal}
}

// Bound is a query validated against the global schema. It carries the
// resolved path metadata the execution strategies need: the classes each
// predicate traverses and per-site attribute availability.
type Bound struct {
	Query   *Query
	Global  *schema.Global
	Targets []BoundPath
	Preds   []BoundPredicate
}

// Bind validates a query against the global schema: the range class exists,
// every path resolves through the composition hierarchy, every predicate
// ends in a primitive attribute, and literal types match attribute types.
func Bind(q *Query, g *schema.Global) (*Bound, error) {
	root := g.Class(q.Range)
	if root == nil {
		return nil, fmt.Errorf("bind: unknown global class %q", q.Range)
	}
	b := &Bound{Query: q, Global: g}

	for _, t := range q.Targets {
		bp, err := bindPath(g, q.Range, t)
		if err != nil {
			return nil, fmt.Errorf("bind target: %w", err)
		}
		b.Targets = append(b.Targets, bp)
	}
	for _, pr := range q.Preds {
		bp, err := bindPath(g, q.Range, pr.Path)
		if err != nil {
			return nil, fmt.Errorf("bind predicate: %w", err)
		}
		if bp.Attr.IsComplex() {
			return nil, fmt.Errorf("bind predicate %s: path ends in complex attribute %s", pr, bp.Attr.Name)
		}
		if err := checkLiteral(bp.Attr, pr.Op, pr.Literal); err != nil {
			return nil, fmt.Errorf("bind predicate %s: %w", pr, err)
		}
		b.Preds = append(b.Preds, BoundPredicate{BoundPath: bp, Op: pr.Op, Literal: pr.Literal})
	}
	return b, nil
}

// BindPredicateAt validates a predicate rooted at an arbitrary global class
// (rather than a query's range class). The localized strategies use it to
// bind the suffix predicates checked against assistant objects.
func BindPredicateAt(g *schema.Global, class string, pr Predicate) (BoundPredicate, error) {
	bp, err := bindPath(g, class, pr.Path)
	if err != nil {
		return BoundPredicate{}, fmt.Errorf("bind predicate at %s: %w", class, err)
	}
	if bp.Attr.IsComplex() {
		return BoundPredicate{}, fmt.Errorf("bind predicate at %s: path ends in complex attribute", class)
	}
	if err := checkLiteral(bp.Attr, pr.Op, pr.Literal); err != nil {
		return BoundPredicate{}, fmt.Errorf("bind predicate at %s: %w", class, err)
	}
	return BoundPredicate{BoundPath: bp, Op: pr.Op, Literal: pr.Literal}, nil
}

// MustBind is Bind that panics on error; intended for fixtures and tests.
func MustBind(q *Query, g *schema.Global) *Bound {
	b, err := Bind(q, g)
	if err != nil {
		panic(err)
	}
	return b
}

func bindPath(g *schema.Global, root string, p Path) (BoundPath, error) {
	if len(p) == 0 {
		return BoundPath{}, fmt.Errorf("empty path on class %s", root)
	}
	bp := BoundPath{Path: p, Classes: make([]string, len(p))}
	cur := root
	for i, step := range p {
		c := g.Class(cur)
		if c == nil {
			return BoundPath{}, fmt.Errorf("path %s: unknown class %q", p, cur)
		}
		a, ok := c.Attr(step)
		if !ok {
			return BoundPath{}, fmt.Errorf("path %s: class %s has no attribute %q", p, cur, step)
		}
		bp.Classes[i] = cur
		if i == len(p)-1 {
			bp.Attr = a
			return bp, nil
		}
		if !a.IsComplex() {
			return BoundPath{}, fmt.Errorf("path %s: attribute %s.%s is primitive mid-path", p, cur, step)
		}
		cur = a.Domain
	}
	panic("unreachable")
}

func checkLiteral(a schema.Attribute, op Op, lit object.Value) error {
	switch a.Prim {
	case object.KindInt, object.KindFloat:
		if lit.Kind() != object.KindInt && lit.Kind() != object.KindFloat {
			return fmt.Errorf("numeric attribute compared with %s literal", lit.Kind())
		}
	case object.KindString:
		if lit.Kind() != object.KindString {
			return fmt.Errorf("string attribute compared with %s literal", lit.Kind())
		}
	case object.KindBool:
		if lit.Kind() != object.KindBool {
			return fmt.Errorf("bool attribute compared with %s literal", lit.Kind())
		}
		if op != OpEq && op != OpNe {
			return fmt.Errorf("bool attribute only supports = and !=")
		}
	}
	return nil
}

// Fold combines per-predicate truth values (aligned with Preds) into the
// object's classification under the query's disjunctive normal form: the
// Kleene disjunction over groups of the conjunction within each group.
func (b *Bound) Fold(verdicts []tvl.Truth) tvl.Truth {
	result := tvl.False
	for _, group := range b.Query.GroupIdx() {
		g := tvl.True
		for _, i := range group {
			v := verdicts[i]
			if v == 0 {
				v = tvl.Unknown // unevaluated predicates carry no information
			}
			g = tvl.And(g, v)
			if g == tvl.False {
				break
			}
		}
		result = tvl.Or(result, g)
		if result == tvl.True {
			return tvl.True
		}
	}
	return result
}

// Conjunctive reports whether the query is a single conjunction (the
// paper's core class).
func (b *Bound) Conjunctive() bool { return len(b.Query.GroupIdx()) == 1 }

// BranchClasses returns the global classes reached through complex steps of
// any target or predicate path (the query's branch classes), sorted.
func (b *Bound) BranchClasses() []string {
	seen := map[string]bool{}
	add := func(bp BoundPath) {
		for i, class := range bp.Classes {
			if i > 0 {
				seen[class] = true
			}
		}
		if bp.Attr.IsComplex() {
			seen[bp.Attr.Domain] = true
		}
	}
	for _, t := range b.Targets {
		add(t)
	}
	for _, p := range b.Preds {
		add(p.BoundPath)
	}
	delete(seen, b.Query.Range)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Classes returns the range class followed by the branch classes.
func (b *Bound) Classes() []string {
	return append([]string{b.Query.Range}, b.BranchClasses()...)
}

// RootSites returns the sites holding a constituent of the range class,
// sorted. These are the sites that receive local queries.
func (b *Bound) RootSites() []object.SiteID {
	return b.Global.Class(b.Query.Range).Sites()
}

// InvolvedSites returns every site holding a constituent of any involved
// class, sorted. These are the sites the centralized approach pulls from.
func (b *Bound) InvolvedSites() []object.SiteID {
	seen := map[object.SiteID]bool{}
	for _, class := range b.Classes() {
		for _, s := range b.Global.Class(class).Sites() {
			seen[s] = true
		}
	}
	out := make([]object.SiteID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InvolvedAttrs returns, per involved global class, the attribute names the
// query touches (for projection before shipping), sorted. The range class
// additionally includes complex attributes used mid-path so references can
// be followed after integration.
func (b *Bound) InvolvedAttrs() map[string][]string {
	seen := map[string]map[string]bool{}
	note := func(class, attr string) {
		m := seen[class]
		if m == nil {
			m = map[string]bool{}
			seen[class] = m
		}
		m[attr] = true
	}
	walk := func(bp BoundPath) {
		for i, step := range bp.Path {
			note(bp.Classes[i], step)
		}
	}
	for _, t := range b.Targets {
		walk(t)
	}
	for _, p := range b.Preds {
		walk(p.BoundPath)
	}
	out := make(map[string][]string, len(seen))
	for class, attrs := range seen {
		list := make([]string, 0, len(attrs))
		for a := range attrs {
			list = append(list, a)
		}
		sort.Strings(list)
		out[class] = list
	}
	return out
}
