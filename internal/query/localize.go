package query

import (
	"fmt"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
)

// UnsolvedSpec describes a predicate that cannot be evaluated at a site
// because some step of its path is a missing attribute of the site's
// constituent class. The localized strategies resolve it at runtime: the
// object reached by Prefix is the unsolved item, and Pred (rooted at the
// item's global class) is the unsolved predicate its assistant objects are
// checked against.
type UnsolvedSpec struct {
	// Prefix is the locally navigable part of the path; empty means the
	// range object itself is the unsolved item.
	Prefix Path
	// ItemClass is the global class of the unsolved item.
	ItemClass string
	// Pred is the unsolved predicate, rooted at ItemClass.
	Pred Predicate
	// Source is the original global predicate.
	Source Predicate
}

// LocalQuery is the query a component database evaluates on behalf of a
// global query: the paper's Q1 → Q1'/Q1” derivation. Predicates involving
// missing attributes of the site's constituent classes are moved from Local
// to Unsolved.
type LocalQuery struct {
	Site       object.SiteID
	GlobalRoot string
	// LocalRoot is the constituent class of the range class at Site.
	LocalRoot string
	Targets   []Path
	// Local are the predicates evaluable at this site (runtime null values
	// may still make them unknown on particular objects).
	Local []Predicate
	// Unsolved are the statically removed predicates.
	Unsolved []UnsolvedSpec
}

// String renders the local query in the style of the paper's Figure 3(b).
func (lq *LocalQuery) String() string {
	var b strings.Builder
	b.WriteString("select Oid")
	for _, t := range lq.Targets {
		b.WriteString(", ")
		b.WriteString(t.String())
	}
	for _, u := range lq.Unsolved {
		if len(u.Prefix) > 0 {
			b.WriteString(", ")
			b.WriteString(u.Prefix.String())
		}
	}
	fmt.Fprintf(&b, " from %s@%s", lq.LocalRoot, lq.Site)
	for i, p := range lq.Local {
		if i == 0 {
			b.WriteString(" where ")
		} else {
			b.WriteString(" and ")
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// Localize derives the local query for a site holding a constituent of the
// range class. A predicate is local when every step of its path is held by
// the constituent class at the site; otherwise it is unsolved there, split
// at the first missing step.
func (b *Bound) Localize(site object.SiteID) (*LocalQuery, error) {
	root := b.Global.Class(b.Query.Range)
	localRoot, ok := root.Constituents[site]
	if !ok {
		return nil, fmt.Errorf("localize: site %s holds no constituent of %s", site, b.Query.Range)
	}
	lq := &LocalQuery{
		Site:       site,
		GlobalRoot: b.Query.Range,
		LocalRoot:  localRoot,
		Targets:    b.Query.Targets,
	}
	for _, bp := range b.Preds {
		if j, missing := b.missingStep(bp.BoundPath, site); missing {
			lq.Unsolved = append(lq.Unsolved, UnsolvedSpec{
				Prefix:    bp.Path[:j],
				ItemClass: bp.Classes[j],
				Pred:      Predicate{Path: bp.Path.Suffix(j), Op: bp.Op, Literal: bp.Literal},
				Source:    bp.Predicate(),
			})
			continue
		}
		lq.Local = append(lq.Local, bp.Predicate())
	}
	return lq, nil
}

// missingStep returns the first step of the path whose attribute is a
// missing attribute of the constituent class at the site.
func (b *Bound) missingStep(bp BoundPath, site object.SiteID) (int, bool) {
	for i, step := range bp.Path {
		if !b.Global.Class(bp.Classes[i]).Holds(site, step) {
			return i, true
		}
	}
	return 0, false
}

// LocalizeAll derives the local queries for every site holding a
// constituent of the range class, in site order.
func (b *Bound) LocalizeAll() []*LocalQuery {
	sites := b.RootSites()
	out := make([]*LocalQuery, 0, len(sites))
	for _, s := range sites {
		lq, err := b.Localize(s)
		if err != nil {
			// RootSites guarantees the constituent exists.
			panic(err)
		}
		out = append(out, lq)
	}
	return out
}
