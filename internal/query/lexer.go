package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokString
	tokInt
	tokFloat
	tokBool
	tokOp    // comparison operator
	tokDot   // .
	tokComma // ,
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes the SQL/X-like surface syntax. Identifiers may contain
// hyphens when the character after the hyphen is a letter (the paper uses
// attribute names like "s-no"); a hyphen followed by a digit starts a
// negative number literal.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("query: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '"' || c == '\'':
		return l.lexString(c)
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q", "!")
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) {
			if l.src[l.pos] == '=' {
				op += "="
				l.pos++
			} else if c == '<' && l.src[l.pos] == '>' {
				op = "!="
				l.pos++
			}
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			tok, err := l.lexNumber(l.pos)
			if err != nil {
				return tok, err
			}
			tok.text = "-" + tok.text
			tok.pos = start
			return tok, nil
		}
		return token{}, l.errf(start, "unexpected %q", "-")
	case isIdentStart(c):
		return l.lexIdent(start)
	default:
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			l.pos++
			b.WriteByte(l.src[l.pos])
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexNumber(start int) (token, error) {
	kind := tokInt
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexIdent(start int) (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isIdentPart(c) {
			l.pos++
			continue
		}
		// Hyphen inside an identifier: only when followed by a letter.
		if c == '-' && l.pos+1 < len(l.src) && isLetter(l.src[l.pos+1]) {
			l.pos += 2
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	switch strings.ToLower(text) {
	case "true", "false":
		return token{kind: tokBool, text: strings.ToLower(text), pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentStart(c byte) bool { return isLetter(c) || c == '_' }

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
