package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
)

// Parse parses a global query. The accepted grammar is disjunctive normal
// form ("and" binds tighter than "or"):
//
//	query  = "select" path {"," path} "from" ident ["where" conj {"or" conj}]
//	conj   = pred {"and" pred}
//	pred   = path op literal
//	path   = ident {"." ident}
//	op     = "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//
// Keywords are case-insensitive. An optional leading range-variable prefix
// on paths (the "X." of the paper's SQL/X examples) is accepted and
// stripped when a range variable is declared with "from <class> <var>".
func Parse(src string) (*Query, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for fixtures and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: position %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %q, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		q.Targets = append(q.Targets, path)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected range class name, got %s", p.tok)
	}
	q.Range = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}

	// Optional range variable: "from Student X".
	var rangeVar string
	if p.tok.kind == tokIdent && !p.keyword("where") {
		rangeVar = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	if p.keyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Disjunctive normal form: conjunctions separated by "or" ("and"
		// binds tighter).
		for {
			var group []int
			for {
				pred, err := p.parsePredicate()
				if err != nil {
					return nil, err
				}
				group = append(group, len(q.Preds))
				q.Preds = append(q.Preds, pred)
				if !p.keyword("and") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			q.Groups = append(q.Groups, group)
			if !p.keyword("or") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if len(q.Groups) == 1 {
			q.Groups = nil // the common conjunctive case stays canonical
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.tok)
	}

	if rangeVar != "" {
		stripVar(q, rangeVar)
	}
	return q, nil
}

// stripVar removes a leading range-variable segment from every path.
func stripVar(q *Query, rangeVar string) {
	strip := func(p Path) Path {
		if len(p) > 1 && p[0] == rangeVar {
			return p[1:]
		}
		return p
	}
	for i, t := range q.Targets {
		q.Targets[i] = strip(t)
	}
	for i := range q.Preds {
		q.Preds[i].Path = strip(q.Preds[i].Path)
	}
}

// reserved are keywords that cannot appear as path segments.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true,
	"and": true, "or": true, "not": true,
}

func (p *parser) parsePath() (Path, error) {
	if p.tok.kind != tokIdent || reserved[strings.ToLower(p.tok.text)] {
		return nil, p.errf("expected attribute name, got %s", p.tok)
	}
	path := Path{p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent || reserved[strings.ToLower(p.tok.text)] {
			return nil, p.errf("expected attribute name after '.', got %s", p.tok)
		}
		path = append(path, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return path, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	path, err := p.parsePath()
	if err != nil {
		return Predicate{}, err
	}
	if p.tok.kind != tokOp {
		return Predicate{}, p.errf("expected comparison operator, got %s", p.tok)
	}
	var op Op
	switch p.tok.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	}
	if err := p.advance(); err != nil {
		return Predicate{}, err
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Path: path, Op: op, Literal: lit}, nil
}

func (p *parser) parseLiteral() (object.Value, error) {
	var v object.Value
	switch p.tok.kind {
	case tokString:
		v = object.Str(p.tok.text)
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return object.Value{}, p.errf("bad integer literal %s: %v", p.tok, err)
		}
		v = object.Int(n)
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return object.Value{}, p.errf("bad float literal %s: %v", p.tok, err)
		}
		v = object.Float(f)
	case tokBool:
		v = object.Bool(p.tok.text == "true")
	case tokIdent:
		// Bare identifiers are accepted as string literals: the paper
		// writes "X.advisor.speciality=database".
		v = object.Str(p.tok.text)
	default:
		return object.Value{}, p.errf("expected literal, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return object.Value{}, err
	}
	return v, nil
}
