// Package query implements the SQL/X-like global query language of the
// paper: single-range-class queries whose predicates are nested (path)
// predicates combined in conjunctive form, e.g.
//
//	select name, advisor.name from Student
//	where address.city = "Taipei" and advisor.speciality = "database"
//	  and advisor.department.name = "CS"
//
// The package provides the AST, a parser, a binder that validates a query
// against the integrated global schema, and the local-query derivation used
// by the localized execution strategies (the Q1 → Q1'/Q1” step of the
// paper's Figure 3).
package query

import (
	"fmt"
	"strings"

	"github.com/hetfed/hetfed/internal/object"
)

// Op is a comparison operator of a predicate.
type Op int

// Comparison operators.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the operator's source form.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Path is a path expression: attribute names navigated from the range class
// through the class composition hierarchy.
type Path []string

// String renders the path in dotted form.
func (p Path) String() string { return strings.Join(p, ".") }

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Suffix returns the path from step i on.
func (p Path) Suffix(i int) Path { return append(Path(nil), p[i:]...) }

// Predicate is one nested predicate: a path compared against a literal.
type Predicate struct {
	Path    Path
	Op      Op
	Literal object.Value
}

// String renders the predicate in source form.
func (pr Predicate) String() string {
	lit := pr.Literal.String()
	if pr.Literal.Kind() == object.KindString {
		lit = fmt.Sprintf("%q", lit)
	}
	return fmt.Sprintf("%s %s %s", pr.Path, pr.Op, lit)
}

// Equal reports whether two predicates are identical.
func (pr Predicate) Equal(o Predicate) bool {
	return pr.Path.Equal(o.Path) && pr.Op == o.Op && pr.Literal.Equal(o.Literal) &&
		pr.Literal.Kind() == o.Literal.Kind()
}

// Query is a parsed global query: a target list, a range class, and
// predicates in disjunctive normal form. Preds is the flat predicate list;
// Groups partitions it into the disjuncts (each group is a conjunction, the
// groups are combined by or). A nil Groups means one conjunction of all
// predicates — the paper's core query class; multi-group queries implement
// the disjunctive extension of the paper's Section 5.
type Query struct {
	Targets []Path
	Range   string
	Preds   []Predicate
	Groups  [][]int
}

// GroupIdx returns the disjuncts as predicate-index groups; a query without
// explicit groups is a single conjunction of every predicate.
func (q *Query) GroupIdx() [][]int {
	if len(q.Groups) > 0 {
		return q.Groups
	}
	all := make([]int, len(q.Preds))
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}

// String renders the query in source form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, t := range q.Targets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(" from ")
	b.WriteString(q.Range)
	if len(q.Preds) > 0 {
		b.WriteString(" where ")
		for gi, group := range q.GroupIdx() {
			if gi > 0 {
				b.WriteString(" or ")
			}
			for pi, idx := range group {
				if pi > 0 {
					b.WriteString(" and ")
				}
				b.WriteString(q.Preds[idx].String())
			}
		}
	}
	return b.String()
}
