package query

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/tvl"
)

func TestParseQ1(t *testing.T) {
	q, err := Parse(school.Q1)
	if err != nil {
		t.Fatalf("Parse(Q1): %v", err)
	}
	if q.Range != "Student" {
		t.Errorf("Range = %q", q.Range)
	}
	wantTargets := []Path{{"name"}, {"advisor", "name"}}
	if !reflect.DeepEqual(q.Targets, wantTargets) {
		t.Errorf("Targets = %v", q.Targets)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("got %d predicates", len(q.Preds))
	}
	want := []Predicate{
		{Path: Path{"address", "city"}, Op: OpEq, Literal: object.Str("Taipei")},
		{Path: Path{"advisor", "speciality"}, Op: OpEq, Literal: object.Str("database")},
		{Path: Path{"advisor", "department", "name"}, Op: OpEq, Literal: object.Str("CS")},
	}
	for i, w := range want {
		if !q.Preds[i].Equal(w) {
			t.Errorf("pred %d = %v, want %v", i, q.Preds[i], w)
		}
	}
}

func TestParseRangeVariable(t *testing.T) {
	// The paper's SQL/X form with explicit range variable X.
	q, err := Parse(`Select X.name, X.advisor.name From Student X ` +
		`Where X.address.city=Taipei and X.advisor.speciality=database ` +
		`and X.advisor.department.name=CS`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Range != "Student" {
		t.Errorf("Range = %q", q.Range)
	}
	if !q.Targets[0].Equal(Path{"name"}) || !q.Targets[1].Equal(Path{"advisor", "name"}) {
		t.Errorf("Targets = %v", q.Targets)
	}
	if !q.Preds[0].Path.Equal(Path{"address", "city"}) {
		t.Errorf("pred 0 path = %v", q.Preds[0].Path)
	}
	if !q.Preds[0].Literal.Equal(object.Str("Taipei")) {
		t.Errorf("bare identifier literal = %v", q.Preds[0].Literal)
	}
}

func TestParseLiteralsAndOperators(t *testing.T) {
	q, err := Parse(`select a from C where a = 5 and b != 2.5 and c < -3 ` +
		`and d <= "x" and e > true and f >= 'quoted' and g <> 7`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	wantOps := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpNe}
	wantLits := []object.Value{
		object.Int(5), object.Float(2.5), object.Int(-3),
		object.Str("x"), object.Bool(true), object.Str("quoted"), object.Int(7),
	}
	for i := range wantOps {
		if q.Preds[i].Op != wantOps[i] {
			t.Errorf("pred %d op = %v, want %v", i, q.Preds[i].Op, wantOps[i])
		}
		if !q.Preds[i].Literal.Equal(wantLits[i]) {
			t.Errorf("pred %d literal = %v, want %v", i, q.Preds[i].Literal, wantLits[i])
		}
	}
}

func TestParseHyphenatedIdentifier(t *testing.T) {
	q, err := Parse(`select s-no from Student where s-no = 804301`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Targets[0].Equal(Path{"s-no"}) {
		t.Errorf("target = %v", q.Targets[0])
	}
	if !q.Preds[0].Path.Equal(Path{"s-no"}) {
		t.Errorf("pred path = %v", q.Preds[0].Path)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse(`select a from C where a = "say \"hi\""`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Preds[0].Literal.Text(); got != `say "hi"` {
		t.Errorf("literal = %q", got)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse(`select name from Student`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Preds) != 0 {
		t.Errorf("Preds = %v", q.Preds)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{``, `expected "select"`},
		{`choose a from C`, `expected "select"`},
		{`select from C`, "expected attribute name"},
		{`select a C`, `expected "from"`},
		{`select a from`, "expected range class"},
		{`select a from C where`, "expected attribute name"},
		{`select a from C where a`, "expected comparison operator"},
		{`select a from C where a =`, "expected literal"},
		{`select a from C where a = 1 or`, "expected attribute name"},
		{`select a from C where a = 1 extra`, "trailing"},
		{`select a. from C`, "expected attribute name after"},
		{`select a from C where a = "unterminated`, "unterminated string"},
		{`select a from C where a = 1 and b = $`, "unexpected character"},
		{`select a from C where a ! 1`, `unexpected "!"`},
		{`select a from C where a = -x`, `unexpected "-"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestQueryString(t *testing.T) {
	src := `select name, advisor.name from Student where address.city = "Taipei" and age > 21`
	q := MustParse(src)
	if got := q.String(); got != src {
		t.Errorf("String = %q, want %q", got, src)
	}
	// String output must reparse to the same query.
	q2 := MustParse(q.String())
	if !reflect.DeepEqual(q, q2) {
		t.Error("String round-trip failed")
	}
}

func TestBindQ1(t *testing.T) {
	fx := school.New()
	b, err := Bind(MustParse(school.Q1), fx.Global)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if len(b.Preds) != 3 || len(b.Targets) != 2 {
		t.Fatalf("preds/targets = %d/%d", len(b.Preds), len(b.Targets))
	}
	p := b.Preds[2] // advisor.department.name
	wantClasses := []string{"Student", "Teacher", "Department"}
	if !reflect.DeepEqual(p.Classes, wantClasses) {
		t.Errorf("Classes = %v", p.Classes)
	}
	if p.Attr.Prim != object.KindString {
		t.Errorf("Attr = %+v", p.Attr)
	}
}

func TestBindErrors(t *testing.T) {
	fx := school.New()
	cases := []struct {
		src  string
		want string
	}{
		{`select name from Ghost`, "unknown global class"},
		{`select ghost from Student`, "no attribute"},
		{`select name from Student where advisor = 1`, "complex attribute"},
		{`select name from Student where name.x = 1`, "primitive mid-path"},
		{`select name from Student where age = "x"`, "numeric attribute"},
		{`select name from Student where name = 5`, "string attribute"},
	}
	for _, c := range cases {
		_, err := Bind(MustParse(c.src), fx.Global)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Bind(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestBindBoolLiteral(t *testing.T) {
	fx := school.New()
	// No bool attribute in the fixture; check the op restriction with a
	// synthetic query on a numeric attribute instead is not possible, so
	// just verify bool literal against string attribute errors.
	_, err := Bind(MustParse(`select name from Student where name = true`), fx.Global)
	if err == nil {
		t.Error("bool literal on string attribute accepted")
	}
}

func TestBranchAndInvolvedClasses(t *testing.T) {
	fx := school.New()
	b := MustBind(MustParse(school.Q1), fx.Global)
	if got := b.BranchClasses(); !reflect.DeepEqual(got, []string{"Address", "Department", "Teacher"}) {
		t.Errorf("BranchClasses = %v", got)
	}
	if got := b.Classes(); !reflect.DeepEqual(got, []string{"Student", "Address", "Department", "Teacher"}) {
		t.Errorf("Classes = %v", got)
	}
	if got := b.RootSites(); !reflect.DeepEqual(got, []object.SiteID{"DB1", "DB2"}) {
		t.Errorf("RootSites = %v", got)
	}
	if got := b.InvolvedSites(); !reflect.DeepEqual(got, []object.SiteID{"DB1", "DB2", "DB3"}) {
		t.Errorf("InvolvedSites = %v", got)
	}
}

func TestInvolvedAttrs(t *testing.T) {
	fx := school.New()
	b := MustBind(MustParse(school.Q1), fx.Global)
	got := b.InvolvedAttrs()
	want := map[string][]string{
		"Student":    {"address", "advisor", "name"},
		"Teacher":    {"department", "name", "speciality"},
		"Department": {"name"},
		"Address":    {"city"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("InvolvedAttrs = %v, want %v", got, want)
	}
}

// TestLocalizeQ1 reproduces the paper's Figure 3(b): Q1' for DB1 keeps only
// the department predicate; Q1” for DB2 keeps the address and speciality
// predicates.
func TestLocalizeQ1(t *testing.T) {
	fx := school.New()
	b := MustBind(MustParse(school.Q1), fx.Global)

	q1p, err := b.Localize("DB1")
	if err != nil {
		t.Fatalf("Localize(DB1): %v", err)
	}
	if len(q1p.Local) != 1 || !q1p.Local[0].Path.Equal(Path{"advisor", "department", "name"}) {
		t.Errorf("DB1 local predicates = %v", q1p.Local)
	}
	if len(q1p.Unsolved) != 2 {
		t.Fatalf("DB1 unsolved = %v", q1p.Unsolved)
	}
	// address.city: missing at step 0 → the root itself is unsolved.
	u0 := q1p.Unsolved[0]
	if len(u0.Prefix) != 0 || u0.ItemClass != "Student" ||
		!u0.Pred.Path.Equal(Path{"address", "city"}) {
		t.Errorf("DB1 unsolved[0] = %+v", u0)
	}
	// advisor.speciality: missing at step 1 → the advisor is the item.
	u1 := q1p.Unsolved[1]
	if !u1.Prefix.Equal(Path{"advisor"}) || u1.ItemClass != "Teacher" ||
		!u1.Pred.Path.Equal(Path{"speciality"}) {
		t.Errorf("DB1 unsolved[1] = %+v", u1)
	}

	q1pp, err := b.Localize("DB2")
	if err != nil {
		t.Fatalf("Localize(DB2): %v", err)
	}
	if len(q1pp.Local) != 2 {
		t.Errorf("DB2 local predicates = %v", q1pp.Local)
	}
	if len(q1pp.Unsolved) != 1 {
		t.Fatalf("DB2 unsolved = %v", q1pp.Unsolved)
	}
	u := q1pp.Unsolved[0]
	if !u.Prefix.Equal(Path{"advisor"}) || u.ItemClass != "Teacher" ||
		!u.Pred.Path.Equal(Path{"department", "name"}) {
		t.Errorf("DB2 unsolved[0] = %+v", u)
	}

	if _, err := b.Localize("DB3"); err == nil {
		t.Error("Localize(DB3) should fail: no Student constituent")
	}

	all := b.LocalizeAll()
	if len(all) != 2 || all[0].Site != "DB1" || all[1].Site != "DB2" {
		t.Errorf("LocalizeAll = %v", all)
	}
}

func TestLocalQueryString(t *testing.T) {
	fx := school.New()
	b := MustBind(MustParse(school.Q1), fx.Global)
	lq, _ := b.Localize("DB1")
	s := lq.String()
	for _, want := range []string{"select Oid", "advisor", "from Student@DB1",
		`advisor.department.name = "CS"`} {
		if !strings.Contains(s, want) {
			t.Errorf("LocalQuery.String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "speciality") && strings.Contains(s, "where") &&
		strings.Contains(s[strings.Index(s, "where"):], "speciality") {
		t.Errorf("removed predicate leaked into where clause: %q", s)
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{"a", "b", "c"}
	if p.String() != "a.b.c" {
		t.Errorf("String = %q", p.String())
	}
	if !p.Suffix(1).Equal(Path{"b", "c"}) {
		t.Errorf("Suffix = %v", p.Suffix(1))
	}
	if p.Equal(Path{"a", "b"}) || !p.Equal(Path{"a", "b", "c"}) {
		t.Error("Equal wrong")
	}
	// Suffix must be independent of the original.
	s := p.Suffix(0)
	s[0] = "z"
	if p[0] != "a" {
		t.Error("Suffix aliases original")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", Op(0): "?"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestPredicateString(t *testing.T) {
	pr := Predicate{Path: Path{"a", "b"}, Op: OpGe, Literal: object.Int(5)}
	if got := pr.String(); got != "a.b >= 5" {
		t.Errorf("String = %q", got)
	}
	pr2 := Predicate{Path: Path{"c"}, Op: OpEq, Literal: object.Str("x")}
	if got := pr2.String(); got != `c = "x"` {
		t.Errorf("String = %q", got)
	}
}

func TestParseDisjunctive(t *testing.T) {
	q, err := Parse(`select a from C where a = 1 and b = 2 or c = 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	groups := q.GroupIdx()
	if len(groups) != 2 || !reflect.DeepEqual(groups[0], []int{0, 1}) ||
		!reflect.DeepEqual(groups[1], []int{2}) {
		t.Errorf("groups = %v", groups)
	}
	// Conjunctive queries keep nil Groups (canonical form).
	q2 := MustParse(`select a from C where a = 1 and b = 2`)
	if q2.Groups != nil {
		t.Errorf("conjunctive Groups = %v", q2.Groups)
	}
	if len(q2.GroupIdx()) != 1 || len(q2.GroupIdx()[0]) != 2 {
		t.Errorf("GroupIdx = %v", q2.GroupIdx())
	}
}

func TestDisjunctiveStringRoundTrip(t *testing.T) {
	src := `select a from C where a = 1 and b = 2 or c = 3`
	q := MustParse(src)
	if got := q.String(); got != src {
		t.Errorf("String = %q, want %q", got, src)
	}
	if !reflect.DeepEqual(MustParse(q.String()), q) {
		t.Error("round trip failed")
	}
}

func TestFold(t *testing.T) {
	fx := school.New()
	// (age > 20 and sex = male) or name = Hedy
	b := MustBind(MustParse(
		`select name from Student where age > 20 and sex = "male" or name = "Hedy"`), fx.Global)
	cases := []struct {
		v    []tvl.Truth
		want tvl.Truth
	}{
		{[]tvl.Truth{tvl.True, tvl.True, tvl.False}, tvl.True},
		{[]tvl.Truth{tvl.False, tvl.True, tvl.False}, tvl.False},
		{[]tvl.Truth{tvl.False, tvl.True, tvl.True}, tvl.True},
		{[]tvl.Truth{tvl.Unknown, tvl.True, tvl.False}, tvl.Unknown},
		{[]tvl.Truth{tvl.False, tvl.False, tvl.Unknown}, tvl.Unknown},
		{[]tvl.Truth{0, 0, tvl.True}, tvl.True}, // unevaluated = unknown
		{[]tvl.Truth{tvl.False, 0, tvl.False}, tvl.False},
	}
	for _, c := range cases {
		if got := b.Fold(c.v); got != c.want {
			t.Errorf("Fold(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if b.Conjunctive() {
		t.Error("disjunctive query reported conjunctive")
	}
	b2 := MustBind(MustParse(`select name from Student where age > 20`), fx.Global)
	if !b2.Conjunctive() {
		t.Error("conjunctive query reported disjunctive")
	}
}
