package remote

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
)

// digestsEqual reports whether two digest snapshots agree on every class.
func digestsEqual(a, b map[string]antientropy.Digest) bool {
	return len(antientropy.DiffClasses(a, b)) == 0
}

// bindAt applies one mapping binding to a single server's replica over the
// wire — the way divergence arises in production (a delta broadcast that
// reached only some replicas).
func bindAt(t *testing.T, srv *Server, d *BindDelta) {
	t.Helper()
	cl := newClient("TEST", CallConfig{}, nil)
	defer cl.close()
	if _, _, err := cl.call(srv.Site(), srv.Addr(), Request{Kind: kindBind, Bind: d}); err != nil {
		t.Fatalf("bind at %s: %v", srv.Site(), err)
	}
}

// TestAntiEntropyConvergesDivergentReplicas: a binding applied at one site
// only (a lost broadcast) must propagate to every peer replica in one
// anti-entropy round from the site that holds it, leaving all digests
// equal.
func TestAntiEntropyConvergesDivergentReplicas(t *testing.T) {
	_, servers, cleanup := startObservedCluster(t)
	defer cleanup()

	d := &BindDelta{Class: "Teacher", GOid: "gt900", Site: "DB9", LOid: "t900'"}
	bindAt(t, servers["DB1"], d)
	if digestsEqual(servers["DB1"].DigestSnapshot(), servers["DB2"].DigestSnapshot()) {
		t.Fatal("replicas agree before repair; the fixture did not diverge")
	}

	if n := servers["DB1"].RunAntiEntropyRound(context.Background()); n == 0 {
		t.Fatal("round found no divergent classes")
	}
	for _, site := range []object.SiteID{"DB2", "DB3"} {
		tab := servers[site].cfg.Tables.Table("Teacher")
		if loid, ok := tab.LOidAt("gt900", "DB9"); !ok || loid != "t900'" {
			t.Errorf("replica %s after repair: gt900@DB9 = (%q, %v), want (t900', true)", site, loid, ok)
		}
		if !digestsEqual(servers["DB1"].DigestSnapshot(), servers[site].DigestSnapshot()) {
			t.Errorf("digests of DB1 and %s still differ after repair", site)
		}
	}
	// A second round finds nothing: the replicas converged.
	if n := servers["DB1"].RunAntiEntropyRound(context.Background()); n != 0 {
		t.Errorf("second round found %d divergent classes, want 0", n)
	}
}

// TestCoordinatorPullsMissingBindings: repair is symmetric — a coordinator
// whose replica is behind the sites (say, restarted from a stale log)
// pulls the bindings the sites kept.
func TestCoordinatorPullsMissingBindings(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()

	d := &BindDelta{Class: "Teacher", GOid: "gt901", Site: "DB9", LOid: "t901'"}
	for _, srv := range servers {
		bindAt(t, srv, d)
	}

	if n := coord.RunAntiEntropyRound(context.Background()); n == 0 {
		t.Fatal("coordinator round found no divergent classes")
	}
	coord.mu.RLock()
	loid, ok := coord.Tables.Table("Teacher").LOidAt("gt901", "DB9")
	coord.mu.RUnlock()
	if !ok || loid != "t901'" {
		t.Fatalf("coordinator after pull: gt901@DB9 = (%q, %v), want (t901', true)", loid, ok)
	}
	if n := coord.RunAntiEntropyRound(context.Background()); n != 0 {
		t.Errorf("second coordinator round found %d divergent classes, want 0", n)
	}
}

// TestAntiEntropyLoopConvergesInBackground: servers configured with an
// anti-entropy cadence repair a lost delta without anyone calling a round
// explicitly.
func TestAntiEntropyLoopConvergesInBackground(t *testing.T) {
	_, servers, cleanup := startClusterWith(t, nil, func(cfg *ServerConfig) {
		cfg.AntiEntropy = AntiEntropyConfig{Interval: 20 * time.Millisecond}
	})
	defer cleanup()

	bindAt(t, servers["DB2"], &BindDelta{Class: "Teacher", GOid: "gt902", Site: "DB9", LOid: "t902'"})

	deadline := time.Now().Add(5 * time.Second)
	for {
		if digestsEqual(servers["DB1"].DigestSnapshot(), servers["DB2"].DigestSnapshot()) &&
			digestsEqual(servers["DB2"].DigestSnapshot(), servers["DB3"].DigestSnapshot()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge within 5s of background anti-entropy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConflictMarksSuspectAndDegradesQueries: contradictory bindings (the
// same GOid bound to different local objects on different replicas) cannot
// be repaired — repair never overwrites. The outvoted replica must mark
// the class suspect, answers touching the class must degrade with a
// divergence failure, and no certain row may be invented.
func TestConflictMarksSuspectAndDegradesQueries(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()

	// DB1 holds gt903→t903'; DB2 and DB3 hold gt903→t999'. DB1 is the
	// minority opinion.
	bindAt(t, servers["DB1"], &BindDelta{Class: "Teacher", GOid: "gt903", Site: "DB9", LOid: "t903'"})
	for _, site := range []object.SiteID{"DB2", "DB3"} {
		bindAt(t, servers[site], &BindDelta{Class: "Teacher", GOid: "gt903", Site: "DB9", LOid: "t999'"})
	}

	servers["DB1"].RunAntiEntropyRound(context.Background())
	sus := servers["DB1"].Tracker().Suspects()
	if len(sus) != 1 || sus[0] != "Teacher" {
		t.Fatalf("DB1 suspects after conflicted round = %v, want [Teacher]", sus)
	}

	// Q1's branch classes include Teacher, so the answer must degrade.
	ans, _, err := coord.Query(school.Q1, exec.CA)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded {
		t.Fatal("answer not degraded despite a suspect replica")
	}
	found := false
	for _, f := range ans.Unavailable {
		if f.Site == "DB1" && strings.Contains(f.Reason, "mapping divergence") &&
			strings.Contains(f.Reason, "Teacher") {
			found = true
		}
	}
	if !found {
		t.Errorf("no divergence failure for DB1 in %v", ans.Unavailable)
	}
	// Degradation is advisory: the certain rows are still the fixture's
	// expected certain answer, not contaminated by the conflict.
	if len(ans.Certain) == 0 {
		t.Error("suspect replica emptied the certain answer")
	}
}

// TestMinorityPartitionMarksAllClassesSuspect: a coordinator that can reach
// fewer than half its peers cannot confirm any replica state with a quorum;
// every class must go suspect, and heal + a clean round must clear the
// marks again.
func TestMinorityPartitionMarksAllClassesSuspect(t *testing.T) {
	coord, _, cleanup := startObservedCluster(t)
	defer cleanup()

	plan := fabric.NewFaultPlan()
	plan.DropLink("G", "DB2")
	plan.DropLink("G", "DB3")
	coord.Call.Faults = plan

	if n := coord.RunAntiEntropyRound(context.Background()); n != 0 {
		t.Errorf("round across a partition repaired %d classes", n)
	}
	if states := coord.DivergenceStates(); len(states) == 0 {
		t.Fatal("minority partition left no suspect marks")
	}
	// Suspect marks degrade queries even though the reachable site answers.
	ans, _, err := coord.Query(school.Q1, exec.CA)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded {
		t.Fatal("answer not degraded during minority partition")
	}

	plan.HealLink("G", "DB2")
	plan.HealLink("G", "DB3")
	coord.RunAntiEntropyRound(context.Background())
	if states := coord.DivergenceStates(); len(states) != 0 {
		t.Errorf("suspect marks survived the heal: %v", states)
	}
}

// TestPeerMaintenanceSerialized (the resync-vs-repair interleaving
// guarantee): resync replay and anti-entropy repair against the SAME peer
// take the peer's maintenance lock, so the two binding streams never
// interleave; both proceed once the lock frees.
func TestPeerMaintenanceSerialized(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()

	// A pending delta for DB1 plus a divergent binding on DB1, so both
	// maintenance paths have real work against the same peer.
	d := &BindDelta{Class: "Teacher", GOid: "gt904", Site: "DB9", LOid: "t904'"}
	coord.queueResync("DB1", d, 0)
	bindAt(t, servers["DB2"], &BindDelta{Class: "Teacher", GOid: "gt905", Site: "DB9", LOid: "t905'"})

	// Hold DB1's maintenance lock: neither stream may start against DB1.
	unlock := coord.peerLock("DB1")
	resyncDone := make(chan struct{})
	repairDone := make(chan struct{})
	go func() {
		coord.replayResync("DB1")
		close(resyncDone)
	}()
	go func() {
		// DB1 sorts first, so the round blocks on its lock before touching
		// any other peer.
		coord.RunAntiEntropyRound(context.Background())
		close(repairDone)
	}()
	select {
	case <-resyncDone:
		t.Fatal("resync replay ran while the peer's maintenance lock was held")
	case <-repairDone:
		t.Fatal("repair round ran while the peer's maintenance lock was held")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	for _, ch := range []chan struct{}{resyncDone, repairDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("maintenance stream did not finish after unlock")
		}
	}

	// Both streams landed. The coordinator pulled gt905 from DB2 during
	// the first round — after its DB1 exchange — so one more round pushes
	// it on to DB1 (the documented convergence bound: a binding crosses
	// one hop per round).
	coord.RunAntiEntropyRound(context.Background())
	tab := servers["DB1"].cfg.Tables.Table("Teacher")
	for _, want := range []*BindDelta{d, {Class: "Teacher", GOid: "gt905", Site: "DB9", LOid: "t905'"}} {
		if loid, ok := tab.LOidAt(want.GOid, want.Site); !ok || loid != want.LOid {
			t.Errorf("DB1 replica: %s@%s = (%q, %v), want (%s, true)", want.GOid, want.Site, loid, ok, want.LOid)
		}
	}
	if st := coord.ResyncStates()["DB1"]; st != "" {
		t.Errorf("ResyncStates[DB1] = %q after replay, want empty", st)
	}
}
