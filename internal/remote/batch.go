package remote

import (
	"fmt"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
)

// BatchConfig tunes the server's outbound check pipeline: instead of one
// RPC per local query per peer, check items bound for the same peer are
// coalesced across a flush window into a single checkbatch request. Under
// concurrent load this collapses N small peer RPCs into one, at the price
// of up to Window of added latency for the first query in a batch.
type BatchConfig struct {
	// Window is how long the first enqueued check waits for co-travelers
	// before its peer batch flushes. Zero disables batching entirely
	// (every local query dispatches its own check RPCs, the pre-batching
	// behavior).
	Window time.Duration
	// MaxBytes flushes a peer's batch early once its queued request bytes
	// reach this threshold, bounding both batch latency under load and the
	// size of one RPC. Default 64 KiB.
	MaxBytes int
	// MaxInflightBytes caps the total request bytes concurrently in flight
	// to all peers; flushes beyond the cap wait for replies to land.
	// Default 1 MiB.
	MaxInflightBytes int
}

func (b BatchConfig) withDefaults() BatchConfig {
	if b.MaxBytes <= 0 {
		b.MaxBytes = 64 << 10
	}
	if b.MaxInflightBytes <= 0 {
		b.MaxInflightBytes = 1 << 20
	}
	return b
}

// batchOutcome is what one waiting local query receives: its own reply
// group from the shared RPC, or the transport error that took the whole
// batch down.
type batchOutcome struct {
	reply federation.CheckReply
	err   error
}

// pendingChecks is one local query's contribution to a peer batch.
type pendingChecks struct {
	items []federation.CheckItem
	trace TraceContext
	// deadline is the originating query's budget expiry (zero when the
	// query has none); the batch RPC's wire budget is derived from its
	// entries' deadlines.
	deadline time.Time
	done     chan batchOutcome
}

// peerQueue accumulates the pending check groups bound for one peer.
type peerQueue struct {
	entries []*pendingChecks
	bytes   int
	timer   *time.Timer
}

// batcher coalesces check dispatch across concurrent local queries. Each
// peer has a queue; the first enqueue arms a flush timer, and the queue
// flushes when the timer fires or its bytes cross MaxBytes, whichever is
// first. Flushed batches travel concurrently (replies stream back per peer
// as they land) under a total in-flight byte cap.
type batcher struct {
	s        *Server
	cfg      BatchConfig
	inflight *byteGate

	mu     sync.Mutex
	queues map[object.SiteID]*peerQueue
	closed bool
}

func newBatcher(s *Server, cfg BatchConfig) *batcher {
	cfg = cfg.withDefaults()
	return &batcher{
		s:        s,
		cfg:      cfg,
		inflight: newByteGate(cfg.MaxInflightBytes),
		queues:   make(map[object.SiteID]*peerQueue),
	}
}

// enqueue queues one query's check items for the target peer and returns
// the entry whose done channel will carry that query's own verdicts.
func (b *batcher) enqueue(target object.SiteID, items []federation.CheckItem, tc TraceContext, deadline time.Time) *pendingChecks {
	entry := &pendingChecks{items: items, trace: tc, deadline: deadline, done: make(chan batchOutcome, 1)}
	bytes := federation.CheckRequest{From: b.s.Site(), Items: items}.WireSize()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		go b.send(target, []*pendingChecks{entry}, bytes)
		return entry
	}
	q := b.queues[target]
	if q == nil {
		q = &peerQueue{}
		b.queues[target] = q
	}
	q.entries = append(q.entries, entry)
	q.bytes += bytes
	switch {
	case q.bytes >= b.cfg.MaxBytes:
		entries, bytes := b.takeLocked(q)
		b.mu.Unlock()
		go b.send(target, entries, bytes)
	case len(q.entries) == 1:
		q.timer = time.AfterFunc(b.cfg.Window, func() { b.flushPeer(target) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	return entry
}

// remove pulls a still-queued entry out of its peer queue — the owning
// query was cancelled while its checks waited for the flush window. It
// reports whether the entry was removed; false means the entry already
// flushed (its batch is in flight) and the caller should simply abandon it:
// the buffered done channel lets the batch complete without a receiver.
func (b *batcher) remove(target object.SiteID, entry *pendingChecks) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[target]
	if q == nil {
		return false
	}
	for i, e := range q.entries {
		if e == entry {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.bytes -= federation.CheckRequest{From: b.s.Site(), Items: e.items}.WireSize()
			if len(q.entries) == 0 && q.timer != nil {
				q.timer.Stop()
				q.timer = nil
			}
			return true
		}
	}
	return false
}

// takeLocked drains a queue (caller holds b.mu) and disarms its timer.
func (b *batcher) takeLocked(q *peerQueue) ([]*pendingChecks, int) {
	entries, bytes := q.entries, q.bytes
	q.entries, q.bytes = nil, 0
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	return entries, bytes
}

// flushPeer ships whatever is queued for the peer (the window expired).
func (b *batcher) flushPeer(target object.SiteID) {
	b.mu.Lock()
	q := b.queues[target]
	if q == nil || len(q.entries) == 0 {
		b.mu.Unlock()
		return
	}
	entries, bytes := b.takeLocked(q)
	b.mu.Unlock()
	b.send(target, entries, bytes)
}

// close flushes every queue immediately; later enqueues bypass batching.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	type flush struct {
		target  object.SiteID
		entries []*pendingChecks
		bytes   int
	}
	var flushes []flush
	for target, q := range b.queues {
		if len(q.entries) == 0 {
			continue
		}
		entries, bytes := b.takeLocked(q)
		flushes = append(flushes, flush{target, entries, bytes})
	}
	b.mu.Unlock()
	for _, f := range flushes {
		go b.send(f.target, f.entries, f.bytes)
	}
}

// send performs one coalesced RPC: the entries' item groups travel as one
// checkbatch request, and the group-aligned replies are routed back to the
// waiting queries. The whole batch shares one trace context (the first
// entry's); the per-query spans at the peer are not separable once their
// wire trip is shared.
func (b *batcher) send(target object.SiteID, entries []*pendingChecks, bytes int) {
	fail := func(err error) {
		for _, e := range entries {
			e.done <- batchOutcome{err: err}
		}
	}
	addr, ok := b.s.peerAddr(target)
	if !ok {
		// An unwired peer degrades like an unreachable one (see
		// dispatchChecks): the waiting queries mark it unavailable.
		fail(&SiteError{Site: target, Err: errPeerNotWired})
		return
	}
	charged := b.inflight.acquire(bytes)
	defer b.inflight.release(charged)

	groups := make([][]federation.CheckItem, len(entries))
	for i, e := range entries {
		groups[i] = e.items
	}
	self := string(b.s.Site())
	reg := b.s.cfg.Metrics
	reg.Counter("check_batches_total", metrics.Labels{Site: self, Peer: string(target)}).Inc()
	reg.Histogram("check_batch_groups", metrics.Labels{Site: self}).Observe(float64(len(groups)))
	reg.Histogram("check_batch_bytes", metrics.Labels{Site: self}).Observe(float64(bytes))

	// The batch's wire budget is the WIDEST of its entries' budgets: a tight
	// query sharing a batch with a roomy one must not cut the roomy one's
	// checks short. Any entry without a deadline lifts the budget entirely.
	var budget int64
	for i, e := range entries {
		if e.deadline.IsZero() {
			budget = 0
			break
		}
		rem := time.Until(e.deadline).Microseconds() + 1
		if rem < 1 {
			rem = 1
		}
		if i == 0 || rem > budget {
			budget = rem
		}
	}
	resp, w, err := b.s.client.call(target, addr, Request{
		Kind:           kindCheckBatch,
		Batch:          groups,
		Trace:          entries[0].trace,
		DeadlineMicros: budget,
	})
	reg.Counter("net_bytes_total",
		metrics.Labels{Site: self, Peer: string(target), Alg: entries[0].trace.Alg}).Add(w.Sent)
	if err != nil {
		fail(err)
		return
	}
	if len(resp.CheckBatch) != len(groups) {
		fail(fmt.Errorf("checkbatch reply has %d groups, want %d", len(resp.CheckBatch), len(groups)))
		return
	}
	// The shared wire trip carries the peer's spans for the batch's trace
	// context (the first entry's query); other queries in the batch lose
	// span coverage for this hop, same as their wire accounting.
	b.s.cfg.Tracer.Import(resp.Spans)
	for i, e := range entries {
		e.done <- batchOutcome{reply: resp.CheckBatch[i]}
	}
}

// byteGate caps the bytes concurrently in flight. An acquisition larger
// than the cap is clamped so an oversized batch still proceeds (alone)
// instead of deadlocking; acquire returns the amount actually charged,
// which the caller must release.
type byteGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newByteGate(capacity int) *byteGate {
	g := &byteGate{cap: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *byteGate) acquire(n int) int {
	if n > g.cap {
		n = g.cap
	}
	if n < 0 {
		n = 0
	}
	g.mu.Lock()
	for g.used+n > g.cap {
		g.cond.Wait()
	}
	g.used += n
	g.mu.Unlock()
	return n
}

func (g *byteGate) release(n int) {
	g.mu.Lock()
	g.used -= n
	g.mu.Unlock()
	g.cond.Broadcast()
}
