package remote

import (
	"path/filepath"
	"testing"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
)

// durableSite is one WAL-backed site server plus the engine that owns its
// on-disk state.
type durableSite struct {
	Server *Server
	Engine *wal.Engine
}

// Close shuts the site down cleanly: the server first, then the engine
// (flushing the WAL's buffered tail to disk).
func (s *durableSite) Close() {
	s.Server.Close()
	s.Engine.Close()
}

// startDurableSite boots one school site from its WAL directory under root:
// recover (or seed, on first boot) the site's database and mapping replica,
// then serve the recovered state with every mutation logged.
func startDurableSite(t *testing.T, root string, site object.SiteID) *durableSite {
	t.Helper()
	fx := school.New()
	eng, db, tables, err := wal.Open(fx.Databases[site].Schema(), wal.Options{
		Dir:  filepath.Join(root, string(site)),
		Site: string(site),
	})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", site, err)
	}
	if err := eng.Import(fx.Databases[site], fx.Mapping); err != nil {
		eng.Close()
		t.Fatalf("Import(%s): %v", site, err)
	}
	srv, err := NewServer(ServerConfig{
		DB:         db,
		Global:     fx.Global,
		Tables:     tables,
		Engine:     eng,
		Signatures: signature.Build(fx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
	})
	if err != nil {
		eng.Close()
		t.Fatalf("NewServer(%s): %v", site, err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		eng.Close()
		t.Fatalf("Listen(%s): %v", site, err)
	}
	return &durableSite{Server: srv, Engine: eng}
}

// TestDurableSiteRestart is the durability acceptance scenario over real
// TCP: a cluster of WAL-backed sites answers the paper's Q1; one site goes
// down (queries degrade, an insert's bind delta goes undelivered); the site
// restarts from its data directory on a fresh port and the next ping
// resyncs it — after which Q1 returns the full paper answer again and both
// the pre-shutdown insert and the missed delta are present in the restarted
// replica.
func TestDurableSiteRestart(t *testing.T) {
	root := t.TempDir()
	fx := school.New()
	sites := map[object.SiteID]*durableSite{}
	addrs := map[object.SiteID]string{}
	for _, site := range school.Sites {
		s := startDurableSite(t, root, site)
		sites[site] = s
		addrs[site] = s.Server.Addr()
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	for _, s := range sites {
		s.Server.SetPeers(addrs)
	}

	// A durable coordinator: the global mapping replica and the bind-delta
	// log live under <root>/G.
	deltaLog, gtables, err := wal.OpenLog(wal.Options{Dir: filepath.Join(root, "G"), Site: "G"})
	if err != nil {
		t.Fatal(err)
	}
	defer deltaLog.Close()
	if err := deltaLog.Import(nil, fx.Mapping); err != nil {
		t.Fatal(err)
	}
	matcher := isomer.NewMatcher(fx.Global)
	if err := matcher.Adopt(fx.Databases, gtables); err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{
		ID:       "G",
		Global:   fx.Global,
		Tables:   matcher.Tables(),
		Matcher:  matcher,
		Sites:    addrs,
		DeltaLog: deltaLog,
		Metrics:  metrics.New(),
		Call:     fastFail,
	}
	defer coord.Close()

	assertQ1 := func(stage string, wantDegraded bool) {
		t.Helper()
		ans, _, err := coord.Query(school.Q1, exec.BL)
		if err != nil {
			t.Fatalf("%s: Q1: %v", stage, err)
		}
		if ans.Degraded != wantDegraded {
			t.Fatalf("%s: Degraded = %v, want %v (unavailable: %v)", stage, ans.Degraded, wantDegraded, ans.Unavailable)
		}
		if wantDegraded {
			return
		}
		if len(ans.Certain) != 1 || ans.Certain[0].GOid != "gs4" {
			t.Errorf("%s: certain = %v", stage, ans.Certain)
		}
		if len(ans.Maybe) != 1 || ans.Maybe[0].GOid != "gs2" {
			t.Errorf("%s: maybe = %v", stage, ans.Maybe)
		}
	}
	assertQ1("healthy cluster", false)

	// Insert at DB3 while it is up: the object and its binding must survive
	// the restart from disk.
	goid, err := coord.Insert("DB3", object.New("t9''", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"),
	}))
	if err != nil {
		t.Fatalf("insert at DB3: %v", err)
	}

	// DB3 goes down: queries degrade, and an insert elsewhere leaves DB3's
	// replica stale (the delta is queued against the durable log).
	sites["DB3"].Close()
	assertQ1("DB3 down", true)
	missedGOid, err := coord.Insert("DB2", object.New("t8'", "Teacher", map[string]object.Value{
		"name": object.Str("Newton"), "speciality": object.Str("physics"),
	}))
	if err == nil {
		t.Fatal("insert with a dead replica reported no staleness")
	}
	if st := coord.ResyncStates()["DB3"]; st == "" {
		t.Fatal("no resync state for the dead replica")
	}

	// Restart DB3 from its data directory on a fresh port. The recovered
	// state must include the pre-shutdown insert, and the ping's resync
	// must deliver the delta DB3 missed while down.
	restarted := startDurableSite(t, root, "DB3")
	sites["DB3"] = restarted
	addrs["DB3"] = restarted.Server.Addr()
	for _, s := range sites {
		s.Server.SetPeers(addrs)
	}
	coord.Sites["DB3"] = restarted.Server.Addr()

	if _, ok := restarted.Server.cfg.DB.Deref("t9''"); !ok {
		t.Fatal("restarted DB3 lost the pre-shutdown insert")
	}
	if loid, ok := restarted.Server.cfg.Tables.Table("Teacher").LOidAt(goid, "DB3"); !ok || loid != "t9''" {
		t.Fatalf("restarted DB3 mapping: %s@DB3 = (%q, %v), want (t9'', true)", goid, loid, ok)
	}

	if err := coord.Ping(); err != nil {
		t.Fatalf("ping of the restarted cluster: %v", err)
	}
	if loid, ok := restarted.Server.cfg.Tables.Table("Teacher").LOidAt(missedGOid, "DB2"); !ok || loid != "t8'" {
		t.Fatalf("missed delta not resynced: %s@DB2 = (%q, %v), want (t8', true)", missedGOid, loid, ok)
	}
	if states := coord.ResyncStates(); len(states) != 0 {
		t.Errorf("ResyncStates after restart = %v, want empty", states)
	}
	assertQ1("DB3 restarted", false)
}
