package remote

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
)

// ServerConfig assembles a component-database site server.
type ServerConfig struct {
	// DB is this site's component database.
	DB *store.Database
	// Global is the integrated global schema (replicated to every site).
	Global *schema.Global
	// Tables is the site's replica of the GOid mapping tables.
	Tables *gmap.Tables
	// Peers maps the other component sites to their network addresses,
	// used to dispatch assistant-object checks.
	Peers map[object.SiteID]string
	// Signatures enables the signature-assisted modes when non-nil.
	Signatures *signature.Index
	// Tracer, when non-nil, records every served request as a span parented
	// on the caller's span (Request.Trace), so site-side spans stitch into
	// the coordinator's query tree.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives per-request counters, latency
	// histograms, and per-site-pair byte accounting.
	Metrics *metrics.Registry
	// Recorder, when non-nil, receives a trace.Profile for every served
	// retrieve and local request — the site-side flight recorder. Requires
	// Tracer.
	Recorder *obs.Recorder
	// Log, when non-nil, receives structured request logs. Defaults to a
	// discarding logger.
	Log *slog.Logger
	// Call is the networking policy for this server's outbound peer calls
	// (assistant-check dispatch): timeouts, retries, pooling, breakers.
	// Zero fields take DefaultCallConfig values.
	Call CallConfig
	// Batch coalesces outbound check RPCs across concurrent local queries;
	// a zero Window disables batching.
	Batch BatchConfig
	// MaxFrameBytes caps one gob-decoded request on an accepted connection;
	// a connection sending a larger frame is rejected and closed
	// (frames_rejected_total counts it). 0 means DefaultMaxFrameBytes;
	// negative disables the limit.
	MaxFrameBytes int
	// IdleTimeout reaps accepted connections with no request activity: a
	// connection that stays silent longer is closed (conns_reaped_total).
	// Clients hold idle pooled connections, so a reaped connection costs
	// them one free stale-pool redial, nothing more. 0 means
	// DefaultIdleTimeout; negative disables reaping.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response; a client that stops reading
	// cannot wedge a handler goroutine forever. 0 means
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Faults, when non-nil, injects failures at this server, mirroring the
	// engine's fault plan semantics over the wire: Delay stalls every
	// non-ping request (cut short when the request's wire budget expires),
	// Kill/DropAfter make the server answer errUnavailable, which clients
	// treat as a transport-level site failure.
	Faults *fabric.FaultPlan
	// Cache enables the site's read-through lookup cache (GOid mapping
	// resolutions and checked assistant verdicts), invalidated per class by
	// the Insert replication path (store + BindDelta).
	Cache bool
	// Engine, when set, is the durable storage engine behind DB and
	// Tables (typically the *wal.Engine that recovered them): bind deltas
	// are logged through it before being applied, and Tables is served
	// as-is instead of cloned — the engine's snapshots must see the
	// replica the server actually mutates. DB is expected to have the
	// engine already attached (store.Database.WithEngine), so store
	// requests log through Insert itself.
	Engine store.StorageEngine
	// AntiEntropy configures the background digest-exchange loop that
	// detects and repairs mapping-table divergence against the peers. The
	// zero value disables the loop; the digest/repair request kinds are
	// served either way, so a peer's loop can still repair this site.
	AntiEntropy AntiEntropyConfig
}

// AntiEntropyConfig tunes a process's background anti-entropy loop.
type AntiEntropyConfig struct {
	// Interval is the cadence between rounds; 0 disables the loop.
	Interval time.Duration
	// Jitter spreads each wait by ±Interval·Jitter so the cluster's loops
	// decorrelate instead of synchronizing into exchange storms. Defaults
	// to 0.2; negative disables jitter.
	Jitter float64
	// Timeout bounds one digest or repair exchange. Defaults to 2s.
	Timeout time.Duration
}

// jittered returns the next wait before a round.
func (c AntiEntropyConfig) jittered() time.Duration {
	j := c.Jitter
	if j == 0 {
		j = 0.2
	}
	if j < 0 {
		return c.Interval
	}
	f := 1 + (rand.Float64()*2-1)*j
	return time.Duration(float64(c.Interval) * f)
}

// timeout resolves the per-exchange bound.
func (c AntiEntropyConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

// Server timeout defaults (see ServerConfig.IdleTimeout / WriteTimeout).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// Server serves one component database over TCP. Connections are
// persistent: each one carries a sequence of gob-encoded requests until the
// client closes it (or Close tears it down).
type Server struct {
	cfg      ServerConfig
	site     *federation.Site
	client   *client
	batcher  *batcher
	tracker  *antientropy.Tracker
	aeCtx    context.Context
	aeCancel context.CancelFunc
	log      *slog.Logger
	ln       net.Listener
	wg       sync.WaitGroup

	// stateMu guards the component database and the mapping-table replica
	// against writes (store/bind requests) concurrent with query
	// processing.
	stateMu sync.RWMutex

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer wraps a component database for network duty. The mapping tables
// are cloned — each server maintains its own replica, kept current through
// bind deltas — unless a durable Engine is set: then the recovered tables
// ARE this site's replica and are served in place, so the engine's
// snapshots and the served state stay one and the same.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DB == nil || cfg.Global == nil || cfg.Tables == nil {
		return nil, errors.New("remote: incomplete server config")
	}
	if cfg.Engine == nil {
		cfg.Tables = cfg.Tables.Clone()
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	// The digest tracker mirrors every mutation of the replica. With a
	// durable engine the engine's LogBind is the single choke point, so the
	// hook observes there; without one the bind paths observe directly
	// (one path or the other, never both — see antientropy.HookEngine).
	tracker := antientropy.NewTracker()
	tracker.Seed(cfg.Tables)
	if cfg.Engine != nil {
		cfg.Engine = antientropy.HookEngine(cfg.Engine, tracker)
	}
	// The server's outbound calls (check dispatch, anti-entropy) live on
	// the same injected network as its inbound side.
	if cfg.Call.Faults == nil {
		cfg.Call.Faults = cfg.Faults
	}
	site := federation.NewSite(cfg.DB, cfg.Global, cfg.Tables)
	if cfg.Cache {
		site.WithCache(federation.NewLookupCache(cfg.Metrics, cfg.DB.Site()))
	}
	aeCtx, aeCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		site:     site,
		client:   newClient(cfg.DB.Site(), cfg.Call, cfg.Metrics),
		tracker:  tracker,
		aeCtx:    aeCtx,
		aeCancel: aeCancel,
		log:      log.With("site", string(cfg.DB.Site())),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.Batch.Window > 0 {
		s.batcher = newBatcher(s, cfg.Batch)
	}
	return s, nil
}

// Listen binds the address and starts serving until Close. Pass
// "127.0.0.1:0" to let the kernel pick a port (see Addr).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.cfg.AntiEntropy.Interval > 0 {
		s.wg.Add(1)
		go s.antiEntropyLoop()
	}
	return nil
}

// antiEntropyLoop runs digest-exchange rounds on a jittered cadence until
// Close.
func (s *Server) antiEntropyLoop() {
	defer s.wg.Done()
	for {
		t := time.NewTimer(s.cfg.AntiEntropy.jittered())
		select {
		case <-s.aeCtx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		s.RunAntiEntropyRound(s.aeCtx)
	}
}

// SetPeers installs the peer address map once every server in the cluster
// has been started (addresses are typically known only after Listen).
func (s *Server) SetPeers(peers map[object.SiteID]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make(map[object.SiteID]string, len(peers))
	for site, addr := range peers {
		if site != s.Site() {
			cp[site] = addr
		}
	}
	s.cfg.Peers = cp
}

func (s *Server) peerAddr(site object.SiteID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.cfg.Peers[site]
	return addr, ok
}

// Addr returns the bound address, valid after Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Site returns the served site's identifier.
func (s *Server) Site() object.SiteID { return s.cfg.DB.Site() }

// Close stops accepting, tears down every open connection (idle pooled
// client connections would otherwise park handler goroutines forever), and
// waits for the handlers to drain. It also releases the server's own
// outbound connection pools.
func (s *Server) Close() error {
	s.aeCancel()
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if s.batcher != nil {
		s.batcher.close()
	}
	s.client.close()
	s.wg.Wait()
	return err
}

// PeerBreakers reports the state of this server's outbound circuit breakers
// (one per peer it dispatched checks to), for the health surface.
func (s *Server) PeerBreakers() map[object.SiteID]string {
	return s.client.BreakerStates()
}

// track registers a live connection; it reports false when the server is
// already closed (the connection must be dropped).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// reqAlg names the strategy a request executes under: the propagated trace
// context's algorithm, falling back to the local mode for untraced callers.
func reqAlg(req Request) string {
	if req.Trace.Alg != "" {
		return req.Trace.Alg
	}
	return req.Mode
}

// reqPhases maps a request kind onto the paper's phases the server performs
// while handling it: retrieval and assistant checking are object location
// (O); a local query evaluates predicates and locates assistants in the
// mode's order (P→O basic, O→P parallel).
func reqPhases(req Request) string {
	switch req.Kind {
	case kindRetrieve, kindCheck, kindCheckBatch:
		return "O"
	case kindLocal:
		switch req.Mode {
		case ModePL, ModeSPL:
			return "OP"
		default:
			return "PO"
		}
	}
	return ""
}

// maxFrame resolves the configured per-request frame limit (0 = unlimited).
func (s *Server) maxFrame() int64 {
	switch {
	case s.cfg.MaxFrameBytes < 0:
		return 0
	case s.cfg.MaxFrameBytes == 0:
		return DefaultMaxFrameBytes
	default:
		return int64(s.cfg.MaxFrameBytes)
	}
}

// idleTimeout resolves the configured idle reap timeout (0 = disabled).
func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.cfg.IdleTimeout < 0:
		return 0
	case s.cfg.IdleTimeout == 0:
		return DefaultIdleTimeout
	default:
		return s.cfg.IdleTimeout
	}
}

// writeTimeout resolves the configured response write bound.
func (s *Server) writeTimeout() time.Duration {
	if s.cfg.WriteTimeout > 0 {
		return s.cfg.WriteTimeout
	}
	return DefaultWriteTimeout
}

// handle serves one persistent connection: a sequence of request/response
// exchanges over a single pair of gob streams (gob ships type information
// once per stream, so the encoder and decoder must live as long as the
// connection). The loop ends when the client closes the connection (a clean
// EOF, not an error — pooled clients park idle connections), on a malformed
// or oversized request, or when the connection idles past IdleTimeout (the
// idle reaper: a read deadline re-armed before every request).
func (s *Server) handle(conn net.Conn) {
	if !s.track(conn) {
		_ = conn.Close()
		return
	}
	defer func() {
		s.untrack(conn)
		_ = conn.Close()
	}()
	self := string(s.Site())
	fl := &frameLimitReader{r: conn, limit: s.maxFrame()}
	cr := &countReader{r: fl}
	cw := &countWriter{w: conn}
	dec := gob.NewDecoder(cr)
	enc := gob.NewEncoder(cw)
	idle := s.idleTimeout()
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		fl.reset()
		var req Request
		if err := dec.Decode(&req); err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
				errors.Is(err, net.ErrClosed), s.isClosed():
				// Client hung up, or we are shutting down.
			case fl.tripped:
				s.cfg.Metrics.Counter("frames_rejected_total", metrics.Labels{Site: self}).Inc()
				s.log.LogAttrs(context.Background(), slog.LevelWarn, "frame rejected",
					slog.Int64("limit", fl.limit))
			case errors.Is(err, os.ErrDeadlineExceeded):
				// No request within the idle window: reap the connection.
				s.cfg.Metrics.Counter("conns_reaped_total", metrics.Labels{Site: self}).Inc()
			default:
				// Mid-stream garbage, not a client hanging up.
				s.cfg.Metrics.Counter("request_errors_total", metrics.Labels{Site: self}).Inc()
			}
			return
		}
		start := time.Now()
		// Re-arm the caller's remaining budget as a local deadline: the wire
		// carries a relative duration, so clock skew between machines cannot
		// corrupt it — only the (already-spent) transit time is lost.
		ctx := context.Background()
		var cancel context.CancelFunc
		if req.DeadlineMicros > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMicros)*time.Microsecond)
		}
		sp := s.cfg.Tracer.StartSpan(trace.SpanID(req.Trace.Span), s.Site(), "serve:"+req.Kind).
			WithQuery(req.Trace.QueryID, req.Trace.Alg).WithPhases(reqPhases(req))
		resp := s.dispatch(ctx, req, sp)
		if cancel != nil {
			cancel()
		}
		if resp.Err != "" {
			sp.Detailf("error: %s", resp.Err)
		}
		// The serve span ends before the response is encoded so the copy
		// shipped back to the caller is closed; traced responses carry this
		// site's spans for the query (peer check spans it imported included),
		// letting the caller's profile cover every participating site.
		sp.End()
		if req.Trace.QueryID != "" && s.cfg.Tracer != nil {
			resp.Spans = s.cfg.Tracer.QuerySpans(req.Trace.QueryID)
		}
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		sent0 := cw.n
		if err := enc.Encode(resp); err != nil {
			sp.Detailf("send failed: %v", err)
			return // connection is torn; the client will retry elsewhere
		}
		respBytes := cw.n - sent0
		sp.Add("resp_bytes", respBytes)
		s.observe(req, resp, time.Since(start), respBytes)
		s.profile(req, resp, time.Since(start))
	}
}

// observe feeds the request's metrics and structured log entry.
func (s *Server) observe(req Request, resp Response, d time.Duration, respBytes int64) {
	self := string(s.Site())
	alg := reqAlg(req)
	us := float64(d.Nanoseconds()) / 1e3
	s.cfg.Metrics.Counter("requests_total", metrics.Labels{Site: self, Alg: alg}).Inc()
	s.cfg.Metrics.Histogram("request_latency_us", metrics.Labels{Site: self, Alg: alg}).Observe(us)
	if resp.Err != "" {
		s.cfg.Metrics.Counter("request_errors_total", metrics.Labels{Site: self}).Inc()
	}
	if req.Trace.From != "" {
		// Bytes this site shipped back to the caller.
		s.cfg.Metrics.Counter("net_bytes_total",
			metrics.Labels{Site: self, Peer: string(req.Trace.From), Alg: alg}).Add(respBytes)
	}
	level := slog.LevelInfo
	if req.Kind == kindPing {
		level = slog.LevelDebug
	}
	s.log.LogAttrs(context.Background(), level, "served",
		slog.String("kind", req.Kind),
		slog.String("query", req.Trace.QueryID),
		slog.String("alg", alg),
		slog.String("from", string(req.Trace.From)),
		slog.Float64("us", us),
		slog.String("err", resp.Err),
	)
}

// profile records a site-side flight-recorder profile for the substantial
// request kinds (retrieve and local). The profile covers this request's
// spans at this site — including peer check spans imported while serving it
// — so a site records one profile per request it served for a query.
func (s *Server) profile(req Request, resp Response, d time.Duration) {
	if s.cfg.Recorder == nil || s.cfg.Tracer == nil || req.Trace.QueryID == "" {
		return
	}
	if req.Kind != kindRetrieve && req.Kind != kindLocal {
		return
	}
	p := trace.BuildProfile(req.Trace.QueryID, reqAlg(req), s.cfg.Tracer.QuerySpans(req.Trace.QueryID))
	if p == nil {
		return
	}
	p.WallMicros = float64(d.Microseconds())
	var unavailable []string
	for _, f := range resp.Local.Unavailable {
		unavailable = append(unavailable, string(f.Site))
	}
	var err error
	if resp.Err != "" {
		err = errors.New(resp.Err)
	}
	p.SetOutcome(0, len(resp.Local.Result.Rows), unavailable, err)
	s.cfg.Recorder.Record(p)
}

func (s *Server) dispatch(ctx context.Context, req Request, sp trace.Handle) Response {
	// Link faults are checked before the ping bypass: a partition cuts the
	// transport itself, so even liveness probes across it must fail — a
	// coordinator on the far side of a cut must see this site as
	// unreachable, not as alive-but-slow. Callers without link identity
	// (no Trace.From) are exempt; injected partitions only bind site pairs.
	if fp := s.cfg.Faults; fp != nil && !fp.BeginLinkOp(req.Trace.From, s.Site()) {
		s.cfg.Metrics.Counter("partition_blocked_total",
			metrics.Labels{Site: string(s.Site()), Peer: string(req.Trace.From)}).Inc()
		return Response{Err: errUnavailable}
	}
	if req.Kind == kindPing {
		// Liveness probes bypass fault injection and budgets: Ping asks
		// whether the transport works, and the resync path depends on it.
		return Response{}
	}
	// Server-side fault injection, mirroring the engine's siteDown: Delay
	// stalls the request (cut short when the budget dies), Kill/DropAfter
	// answer errUnavailable, which the client maps onto a SiteError.
	if fp := s.cfg.Faults; fp != nil {
		if d := fp.DelayMicros(s.Site()); d > 0 {
			sleepCtx(ctx, time.Duration(d*float64(time.Microsecond)))
		}
		if !fp.BeginOp(s.Site()) {
			return Response{Err: errUnavailable}
		}
	}
	if ctx.Err() != nil {
		return Response{Err: errDeadline}
	}
	switch req.Kind {
	case kindRetrieve:
		s.stateMu.RLock()
		defer s.stateMu.RUnlock()
		return s.handleRetrieve(ctx, req, sp)
	case kindLocal:
		// handleLocal manages the state lock itself: it must not be held
		// across the check RPCs to peers. Holding it there deadlocks the
		// federation — site A's local handler waits on a check at site B,
		// B's check waits on B's read lock behind a queued insert writer,
		// and B's own local handler waits on a check at A in the same way.
		return s.handleLocal(ctx, req, sp)
	case kindCheck:
		s.stateMu.RLock()
		defer s.stateMu.RUnlock()
		return s.handleCheck(ctx, req, sp)
	case kindCheckBatch:
		s.stateMu.RLock()
		defer s.stateMu.RUnlock()
		return s.handleCheckBatch(ctx, req, sp)
	case kindStore:
		s.stateMu.Lock()
		defer s.stateMu.Unlock()
		return s.handleStore(req)
	case kindBind:
		s.stateMu.Lock()
		defer s.stateMu.Unlock()
		return s.handleBind(req)
	case kindDigest:
		// The tracker serializes itself; a snapshot mid-bind is merely one
		// binding stale, which the next round reconciles.
		return Response{Digests: s.tracker.Snapshot()}
	case kindRepair:
		s.stateMu.Lock()
		defer s.stateMu.Unlock()
		return s.handleRepair(req)
	default:
		return Response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

// handleStore inserts an object into the local component database and
// drops the lookup cache's entries for the object's global class (the new
// object may now serve as an assistant where a fetch previously failed).
func (s *Server) handleStore(req Request) Response {
	if req.Store == nil {
		return Response{Err: "store request without object"}
	}
	if err := s.cfg.DB.Insert(req.Store); err != nil {
		return Response{Err: err.Error()}
	}
	if gc := s.cfg.Global.GlobalFor(s.Site(), req.Store.Class); gc != nil {
		s.site.Cache().InvalidateClass(gc.Name)
	}
	return Response{}
}

// handleBind applies a mapping-table delta to this site's replica and
// invalidates the class's lookup-cache entries: the binding changes which
// isomeric locations (and therefore which assistants) the class's entities
// resolve to, so cached mappings and verdicts of that class are stale.
func (s *Server) handleBind(req Request) Response {
	if req.Bind == nil {
		return Response{Err: "bind request without delta"}
	}
	d := req.Bind
	if _, err := s.applyBindLocked(d.Class, d.GOid, d.Site, d.LOid); err != nil {
		return Response{Err: err.Error()}
	}
	return Response{}
}

// applyBindLocked applies one binding to the replica under stateMu: log
// (durable engines), bind, observe (digest), invalidate cache. An exact
// duplicate is a re-delivery — durable-log rebuild, resync replay, or a
// repair stream overlapping deltas already applied — and acks idempotently
// (applied=false, no error). A conflicting binding errors without
// mutating anything.
func (s *Server) applyBindLocked(class string, goid object.GOid, site object.SiteID, loid object.LOid) (applied bool, err error) {
	t := s.cfg.Tables.Table(class)
	if t.Bound(goid, site, loid) {
		return false, nil
	}
	// Detect conflicts before logging: a binding Bind would refuse must
	// reach neither the WAL nor the digest, or the durable record and the
	// replica (and every digest exchange thereafter) disagree forever.
	if prev, ok := t.GOidOf(site, loid); ok && prev != goid {
		return false, fmt.Errorf("gmap %s: %s@%s already bound to %s", class, loid, site, prev)
	}
	if prev, ok := t.LOidAt(goid, site); ok && prev != loid {
		return false, fmt.Errorf("gmap %s: %s already has %s at site %s", class, goid, prev, site)
	}
	if s.cfg.Engine != nil {
		// The engine hook observes the digest on LogBind success.
		if err := s.cfg.Engine.LogBind(class, goid, site, loid); err != nil {
			return false, err
		}
	}
	if err := t.Bind(goid, site, loid); err != nil {
		return false, err
	}
	if s.cfg.Engine == nil {
		s.tracker.Observe(class, goid, site, loid)
	}
	s.site.Cache().InvalidateClass(class)
	return true, nil
}

// handleRepair serves the symmetric half of one repair exchange: apply the
// caller's bindings this replica is missing (conflicts are counted and
// skipped, never overwritten — the class stays divergent for an operator),
// then answer with this replica's own bindings in the divergent buckets so
// the caller converges too. The reply's bindings are collected before the
// caller's are applied, so the caller is not echoed its own stream back.
func (s *Server) handleRepair(req Request) Response {
	r := req.Repair
	if r == nil {
		return Response{Err: "repair request without payload"}
	}
	mine := antientropy.BucketBindings(s.cfg.Tables.Table(r.Class), r.Buckets)
	reply := &RepairReply{Bindings: mine}
	for _, b := range r.Bindings {
		applied, err := s.applyBindLocked(r.Class, b.GOid, b.Site, b.LOid)
		switch {
		case err != nil:
			reply.Conflicts++
			s.tracker.NoteConflict()
			s.cfg.Metrics.Counter("antientropy_conflicts_total",
				metrics.Labels{Site: string(s.Site())}).Inc()
		case applied:
			reply.Applied++
		}
	}
	if reply.Applied > 0 {
		s.cfg.Metrics.Counter("antientropy_repair_bindings_total",
			metrics.Labels{Site: string(s.Site()), Peer: string(req.Trace.From)}).Add(int64(reply.Applied))
	}
	return Response{Repair: reply}
}

// bind parses and binds a query text against the site's global schema.
func (s *Server) bind(text string) (*query.Bound, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return query.Bind(q, s.cfg.Global)
}

// runReal executes a federation operation on the real fabric under the
// request's context: fault-injected delays inside the operation are cut
// short when the budget dies, and strategy checkpoints see the context
// through Proc.Context. The returned metrics carry the operation's counted
// events (disk bytes, CPU ops) so serve spans can ship the measured work
// back to the coordinator for calibration.
func runReal(ctx context.Context, name string, fn func(fabric.Proc)) (fabric.Metrics, error) {
	return fabric.NewReal(fabric.DefaultRates()).WithContext(ctx).Run(name, fn)
}

// addWork stamps an operation's counted events onto a span. The profile
// builder aggregates these counters per site, giving the adaptive
// calibrator its cost-model denominators for remotely served queries.
func addWork(sp trace.Handle, m fabric.Metrics) {
	sp.Add("disk_bytes", m.DiskBytes).Add("cpu_ops", m.CPUOps)
}

func (s *Server) handleRetrieve(ctx context.Context, req Request, sp trace.Handle) Response {
	b, err := s.bind(req.Query)
	if err != nil {
		return Response{Err: err.Error()}
	}
	var reply federation.RetrieveReply
	m, err := runReal(ctx, "retrieve", func(p fabric.Proc) {
		reply = s.site.Retrieve(p, b)
	})
	if err != nil {
		return Response{Err: err.Error()}
	}
	addWork(sp, m)
	if ctx.Err() != nil {
		// The budget died mid-retrieve; the reply would arrive too late to
		// integrate, so answer the marker instead of shipping dead bytes.
		return Response{Err: errDeadline}
	}
	return Response{Retrieve: reply, Suspect: s.tracker.SuspectOf(b.Classes())}
}

func (s *Server) handleCheck(ctx context.Context, req Request, sp trace.Handle) Response {
	var reply federation.CheckReply
	m, err := runReal(ctx, "check", func(p fabric.Proc) {
		reply = s.site.CheckAssistants(p, req.Items)
	})
	if err != nil {
		return Response{Err: err.Error()}
	}
	addWork(sp, m)
	if ctx.Err() != nil {
		return Response{Err: errDeadline}
	}
	return Response{Check: reply}
}

// handleCheckBatch serves a coalesced check request: one RPC carrying the
// item groups of several concurrent local queries, answered group-aligned
// so the batching peer can route each group's verdicts back to its query.
// The batch's wire budget is the widest of its queries' budgets, so a group
// whose own query died is simply discarded by the waiting peer.
func (s *Server) handleCheckBatch(ctx context.Context, req Request, sp trace.Handle) Response {
	replies := make([]federation.CheckReply, len(req.Batch))
	m, err := runReal(ctx, "checkbatch", func(p fabric.Proc) {
		for i, items := range req.Batch {
			if p.Context().Err() != nil {
				return
			}
			replies[i] = s.site.CheckAssistants(p, items)
		}
	})
	if err != nil {
		return Response{Err: err.Error()}
	}
	addWork(sp, m)
	if ctx.Err() != nil {
		return Response{Err: errDeadline}
	}
	return Response{CheckBatch: replies}
}

// handleLocal runs the site flow of a localized strategy. Under the basic
// modes the local predicates are evaluated before any check is dispatched;
// under the parallel modes the checks travel to the peers while the local
// predicates are still being evaluated.
//
// Locking invariant: stateMu is held only around the local evaluation
// phases, which are bounded CPU work, and is always released before
// waiting on the check RPCs. The peers' check handlers take their own
// read locks, so holding ours across the wait would let two sites'
// local handlers block on each other whenever insert writers are queued.
func (s *Server) handleLocal(ctx context.Context, req Request, sp trace.Handle) Response {
	b, err := s.bind(req.Query)
	if err != nil {
		return Response{Err: err.Error()}
	}
	var sigs *signature.Index
	switch req.Mode {
	case ModeBL, ModePL:
	case ModeSBL, ModeSPL:
		if s.cfg.Signatures == nil {
			return Response{Err: "signature mode requested but no signature index configured"}
		}
		sigs = s.cfg.Signatures
	default:
		return Response{Err: fmt.Sprintf("unknown local mode %q", req.Mode)}
	}

	var reply LocalReply
	switch req.Mode {
	case ModeBL, ModeSBL:
		var checks map[object.SiteID][]federation.CheckItem
		s.stateMu.RLock()
		m, evalErr := runReal(ctx, "local-bl", func(p fabric.Proc) {
			reply.Result, checks = s.site.EvalLocalBasic(p, b, sigs)
		})
		s.stateMu.RUnlock()
		if evalErr != nil {
			return Response{Err: evalErr.Error()}
		}
		addWork(sp, m)
		if ctx.Err() != nil {
			// Budget died between phase P and check dispatch: answering the
			// marker beats shipping a result the caller can no longer use.
			return Response{Err: errDeadline}
		}
		replies, dead, err := s.dispatchChecks(ctx, req, sp, checks)
		if err != nil {
			return Response{Err: err.Error()}
		}
		reply.CheckReplies = replies
		reply.Unavailable = dead
	case ModePL, ModeSPL:
		var (
			nav    *federation.Navigation
			checks map[object.SiteID][]federation.CheckItem
		)
		s.stateMu.RLock()
		mo, err := runReal(ctx, "local-pl-o", func(p fabric.Proc) {
			nav, checks = s.site.NavigateAll(p, b, sigs)
		})
		if err != nil {
			s.stateMu.RUnlock()
			return Response{Err: err.Error()}
		}
		if ctx.Err() != nil {
			s.stateMu.RUnlock()
			return Response{Err: errDeadline}
		}
		addWork(sp, mo)
		// Phase O's checks proceed at the peers while phase P runs here.
		// The dispatcher goroutine runs unlocked; phase P keeps the read
		// lock so both local phases see one consistent state snapshot.
		type checkOutcome struct {
			replies []federation.CheckReply
			dead    []federation.SiteFailure
			err     error
		}
		done := make(chan checkOutcome, 1)
		go func() {
			replies, dead, err := s.dispatchChecks(ctx, req, sp, checks)
			done <- checkOutcome{replies: replies, dead: dead, err: err}
		}()
		mp, perr := runReal(ctx, "local-pl-p", func(p fabric.Proc) {
			reply.Result = s.site.EvalNavigated(p, b, nav)
		})
		s.stateMu.RUnlock()
		if perr != nil {
			<-done // do not leak the dispatcher
			return Response{Err: perr.Error()}
		}
		addWork(sp, mp)
		outcome := <-done
		if outcome.err != nil {
			return Response{Err: outcome.err.Error()}
		}
		reply.CheckReplies = outcome.replies
		reply.Unavailable = outcome.dead
	}
	return Response{Local: reply, Suspect: s.tracker.SuspectOf(b.Classes())}
}

// errPeerNotWired marks a check target with no entry in the peer address
// map. Wrapped in a SiteError it classifies as "site unavailable", so the
// dependent predicates degrade to maybe instead of failing the query.
var errPeerNotWired = errors.New("no address in peer wiring")

// dispatchChecks sends the check items to their target peers in parallel
// and collects the verdicts. The peers' check spans are parented on this
// server's serve span, so the whole chain (coordinator → site → peer)
// renders as one query tree.
//
// A dead or unreachable peer does not fail the local request: its checks
// are reported as unavailable and the corresponding predicates stay
// unknown, so the coordinator degrades the dependent results to maybe.
// That includes a peer absent from the wiring entirely — a site that was
// killed and removed from the peer map degrades exactly like one that
// stopped answering mid-flight.
func (s *Server) dispatchChecks(ctx context.Context, req Request, sp trace.Handle,
	checks map[object.SiteID][]federation.CheckItem) ([]federation.CheckReply, []federation.SiteFailure, error) {
	targets := make([]object.SiteID, 0, len(checks))
	for t := range checks {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	if s.batcher != nil {
		return s.dispatchChecksBatched(ctx, req, sp, checks, targets)
	}

	self := string(s.Site())
	alg := reqAlg(req)
	replies := make([]federation.CheckReply, len(targets))
	errs := make([]error, len(targets))
	addrs := make([]string, len(targets))
	for i, target := range targets {
		if addr, ok := s.peerAddr(target); ok {
			addrs[i] = addr
		} else {
			errs[i] = &SiteError{Site: target, Err: errPeerNotWired}
		}
	}
	var wg sync.WaitGroup
	for i, target := range targets {
		if errs[i] != nil {
			continue
		}
		items := checks[target]
		s.cfg.Metrics.Counter("checks_dispatched_total",
			metrics.Labels{Site: self, Alg: alg}).Add(int64(len(items)))
		wg.Add(1)
		go func(i int, target object.SiteID, addr string, items []federation.CheckItem) {
			defer wg.Done()
			resp, w, err := s.client.callCtx(ctx, target, addr, Request{
				Kind:  kindCheck,
				Items: items,
				Trace: TraceContext{
					QueryID: req.Trace.QueryID,
					Alg:     alg,
					Span:    uint64(sp.ID()),
					From:    s.Site(),
				},
			})
			s.cfg.Metrics.Counter("net_bytes_total",
				metrics.Labels{Site: self, Peer: string(target), Alg: alg}).Add(w.Sent)
			if err != nil {
				errs[i] = err
				return
			}
			// Fold the peer's check spans into this site's tracer; they ship
			// onward to the coordinator with this site's own response.
			s.cfg.Tracer.Import(resp.Spans)
			replies[i] = resp.Check
		}(i, target, addrs[i], items)
	}
	wg.Wait()

	var (
		out   []federation.CheckReply
		dead  []federation.SiteFailure
		fatal error
	)
	for i, err := range errs {
		switch {
		case err == nil:
			out = append(out, replies[i])
		case IsInterrupted(err):
			// The query's budget died (or its caller left) mid-dispatch: the
			// verdicts are simply missing, same shape as a dead peer, but the
			// peer's health record stays clean.
			sp.Detailf("peer %s check interrupted: %v", targets[i], err)
			dead = append(dead, federation.SiteFailure{Site: targets[i], Reason: err.Error()})
		case IsSiteUnavailable(err):
			s.cfg.Metrics.Counter("site_unavailable_total",
				metrics.Labels{Site: self, Peer: string(targets[i]), Alg: alg}).Inc()
			sp.Detailf("peer %s unavailable: %v", targets[i], err)
			dead = append(dead, federation.SiteFailure{Site: targets[i], Reason: err.Error()})
		case fatal == nil:
			// The peer answered with an error: deterministic, fail loudly.
			fatal = err
		}
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	return out, dead, nil
}

// dispatchChecksBatched routes the check items through the cross-query
// batcher instead of per-query RPCs: each target's items join that peer's
// open batch (flushed on the window or the byte threshold), and the reply
// groups stream back per peer as their batches land. Error semantics match
// the direct path: an unreachable peer degrades, a peer-answered error is
// fatal.
func (s *Server) dispatchChecksBatched(ctx context.Context, req Request, sp trace.Handle,
	checks map[object.SiteID][]federation.CheckItem, targets []object.SiteID) ([]federation.CheckReply, []federation.SiteFailure, error) {
	self := string(s.Site())
	alg := reqAlg(req)
	tc := TraceContext{QueryID: req.Trace.QueryID, Alg: alg, Span: uint64(sp.ID()), From: s.Site()}
	var deadline time.Time
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}
	entries := make([]*pendingChecks, len(targets))
	for i, target := range targets {
		items := checks[target]
		s.cfg.Metrics.Counter("checks_dispatched_total",
			metrics.Labels{Site: self, Alg: alg}).Add(int64(len(items)))
		entries[i] = s.batcher.enqueue(target, items, tc, deadline)
	}

	var (
		out   []federation.CheckReply
		dead  []federation.SiteFailure
		fatal error
	)
	for i, e := range entries {
		var oc batchOutcome
		select {
		case oc = <-e.done:
		case <-ctx.Done():
			// The query died while its checks sat in (or flew with) a batch.
			// A still-queued entry is pulled out so the eventual batch does
			// not carry dead items; an already-flushed entry is abandoned —
			// its done channel is buffered, so the batch completes for its
			// surviving co-travelers without a blocked receiver.
			s.batcher.remove(targets[i], e)
			oc = batchOutcome{err: fmt.Errorf("check dispatch to %s: %w", targets[i], ctx.Err())}
		}
		switch {
		case oc.err == nil:
			out = append(out, oc.reply)
		case IsInterrupted(oc.err):
			sp.Detailf("peer %s check interrupted: %v", targets[i], oc.err)
			dead = append(dead, federation.SiteFailure{Site: targets[i], Reason: oc.err.Error()})
		case IsSiteUnavailable(oc.err):
			s.cfg.Metrics.Counter("site_unavailable_total",
				metrics.Labels{Site: self, Peer: string(targets[i]), Alg: alg}).Inc()
			sp.Detailf("peer %s unavailable: %v", targets[i], oc.err)
			dead = append(dead, federation.SiteFailure{Site: targets[i], Reason: oc.err.Error()})
		case fatal == nil:
			fatal = oc.err
		}
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	return out, dead, nil
}
