package remote

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
)

// CallConfig is the client-side networking policy of a federation process:
// how calls time out, retry, back off, pool connections, and trip circuit
// breakers. The zero value means DefaultCallConfig. Timeouts are plain
// fields (not package globals) so concurrent coordinators and tests can
// run different policies without racing.
type CallConfig struct {
	// DialTimeout bounds connection establishment to a peer.
	DialTimeout time.Duration
	// CallTimeout bounds one full request/response exchange: a dead or
	// wedged peer fails the call instead of hanging it forever.
	CallTimeout time.Duration
	// Attempts is the total number of tries per call (1 = no retries).
	// Only transport failures are retried; an error answered by the site
	// itself is deterministic and returned immediately.
	Attempts int
	// BackoffBase is the sleep before the first retry; each further retry
	// doubles it up to BackoffMax. Every backoff is jittered ±50% so
	// retries from concurrent calls spread out instead of stampeding a
	// recovering site.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// PoolSize is the maximum number of idle pooled connections per site.
	PoolSize int
	// BreakerThreshold is the run of consecutive call failures that opens
	// a site's circuit breaker; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe.
	BreakerCooldown time.Duration
	// Faults, when set, injects network faults into real-TCP calls: a
	// partitioned or dropped link fails the call before dialing (the
	// partitioned peer is unreachable even though its process is alive),
	// and a delayed link sleeps before the exchange. The same plan is
	// normally shared with the peers' ServerConfig.Faults so both
	// directions of an asymmetric cut are enforced.
	Faults *fabric.FaultPlan
}

// DefaultCallConfig returns the production policy: modest retries with
// jittered exponential backoff, a small warm-connection pool, and a breaker
// that fails fast after a run of failures.
func DefaultCallConfig() CallConfig {
	return CallConfig{
		DialTimeout:      5 * time.Second,
		CallTimeout:      60 * time.Second,
		Attempts:         3,
		BackoffBase:      25 * time.Millisecond,
		BackoffMax:       2 * time.Second,
		PoolSize:         4,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultCallConfig.
func (c CallConfig) withDefaults() CallConfig {
	d := DefaultCallConfig()
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = d.CallTimeout
	}
	if c.Attempts <= 0 {
		c.Attempts = d.Attempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = d.BackoffMax
	}
	if c.PoolSize <= 0 {
		c.PoolSize = d.PoolSize
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	// BreakerThreshold 0 is meaningful (breaker disabled); negative means
	// "use the default".
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	return c
}

// backoff returns the jittered sleep before retry attempt (1-based).
func (c CallConfig) backoff(attempt int) time.Duration {
	d := c.BackoffBase << (attempt - 1)
	if d > c.BackoffMax || d <= 0 {
		d = c.BackoffMax
	}
	// ±50% jitter decorrelates concurrent retriers.
	f := 0.5 + rand.Float64()
	return time.Duration(float64(d) * f)
}

// SiteError marks a transport-level failure reaching a site: dials,
// timeouts, torn connections, and open circuit breakers. Callers treat it
// as "site unavailable" — under the partial-answer semantics the query
// degrades instead of failing. Errors the site itself answered (bad query,
// unknown mode) are NOT SiteErrors; they are deterministic and propagate.
type SiteError struct {
	Site object.SiteID
	Err  error
}

// Error implements error.
func (e *SiteError) Error() string {
	return fmt.Sprintf("remote: site %s unavailable: %v", e.Site, e.Err)
}

// Unwrap exposes the transport cause.
func (e *SiteError) Unwrap() error { return e.Err }

// client issues site calls for one federation process (a coordinator, or a
// server dispatching assistant checks) under one CallConfig: pooled
// connections, retries with jittered exponential backoff, and a per-site
// circuit breaker. Metrics (when a registry is wired) record retries,
// failures, breaker transitions, and a per-site breaker-state gauge.
type client struct {
	cfg  CallConfig
	self object.SiteID
	reg  *metrics.Registry

	mu       sync.Mutex
	pools    map[string]*pool
	breakers map[object.SiteID]*breaker
}

func newClient(self object.SiteID, cfg CallConfig, reg *metrics.Registry) *client {
	return &client{
		cfg:      cfg.withDefaults(),
		self:     self,
		reg:      reg,
		pools:    make(map[string]*pool),
		breakers: make(map[object.SiteID]*breaker),
	}
}

func (cl *client) pool(addr string) *pool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	p := cl.pools[addr]
	if p == nil {
		p = newPool(addr, cl.cfg.DialTimeout, cl.cfg.PoolSize)
		cl.pools[addr] = p
	}
	return p
}

func (cl *client) breaker(site object.SiteID) *breaker {
	if cl.cfg.BreakerThreshold <= 0 {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	b := cl.breakers[site]
	if b == nil {
		b = newBreaker(cl.cfg.BreakerThreshold, cl.cfg.BreakerCooldown, func(from, to string) {
			cl.reg.Counter("breaker_transitions_total",
				metrics.Labels{Site: string(cl.self), Peer: string(site), Phase: to}).Inc()
			cl.reg.Gauge("breaker_state",
				metrics.Labels{Site: string(cl.self), Peer: string(site)}).Set(breakerStateValue(to))
		})
		cl.breakers[site] = b
	}
	return b
}

// breakerStateValue encodes a breaker state for the breaker_state gauge.
func breakerStateValue(state string) int64 {
	switch state {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// BreakerStates reports each peer's breaker state, keyed by site — the
// /healthz degradation surface. Sites that were never called are absent
// (implicitly closed).
func (cl *client) BreakerStates() map[object.SiteID]string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[object.SiteID]string, len(cl.breakers))
	for site, b := range cl.breakers {
		out[site] = b.State()
	}
	return out
}

// UnavailablePeers lists the peers whose breaker is currently open, sorted.
func (cl *client) UnavailablePeers() []object.SiteID {
	var out []object.SiteID
	for site, state := range cl.BreakerStates() {
		if state == BreakerOpen {
			out = append(out, site)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// close releases every pooled connection.
func (cl *client) close() {
	cl.mu.Lock()
	pools := cl.pools
	cl.pools = make(map[string]*pool)
	cl.mu.Unlock()
	for _, p := range pools {
		p.closeAll()
	}
}

// call performs one request/response exchange with the site server at addr,
// with retries and breaker accounting, under the config's call timeout.
func (cl *client) call(site object.SiteID, addr string, req Request) (Response, wireStats, error) {
	return cl.callCtx(context.Background(), site, addr, req)
}

// callCtx is call under a caller context. The context does three jobs:
//
//   - Budget on the wire: the remaining time until ctx's deadline is stamped
//     onto the request (Request.DeadlineMicros) as a relative duration, so
//     the server re-arms the budget on arrival regardless of clock skew.
//   - Per-attempt timeouts: each exchange runs under the smaller of the
//     configured call timeout and the remaining budget — a 50ms budget never
//     waits out a 60s timeout.
//   - Cancellation: a dying context aborts backoff sleeps and slams the
//     in-flight connection's deadline (see pconn.exchange). A call ended by
//     its context returns the ctx error (errors.Is-able against
//     context.Canceled / DeadlineExceeded), is NOT retried, and does NOT
//     charge the circuit breaker — the caller going away says nothing about
//     the peer's health.
func (cl *client) callCtx(ctx context.Context, site object.SiteID, addr string, req Request) (Response, wireStats, error) {
	return cl.callTimeout(ctx, site, addr, req, cl.cfg.CallTimeout)
}

// callTimeout is callCtx with an explicit per-exchange timeout (health
// probes use a tighter bound than queries).
func (cl *client) callTimeout(ctx context.Context, site object.SiteID, addr string, req Request, timeout time.Duration) (Response, wireStats, error) {
	// Injected network faults come first: a cut link makes the peer
	// unreachable for this caller regardless of breaker state, and the
	// failure must not dial (nothing crosses a partition).
	if fp := cl.cfg.Faults; fp != nil {
		reason := fp.LinkReason(cl.self, site)
		if !fp.BeginLinkOp(cl.self, site) {
			cl.reg.Counter("partition_blocked_total",
				metrics.Labels{Site: string(cl.self), Peer: string(site)}).Inc()
			return Response{}, wireStats{}, &SiteError{Site: site, Err: fmt.Errorf("%s: %s", addr, reason)}
		}
		if d := fp.LinkDelayMicros(cl.self, site); d > 0 {
			if !sleepCtx(ctx, time.Duration(d)*time.Microsecond) {
				return Response{}, wireStats{}, fmt.Errorf("remote: call %s: %w", addr, ctx.Err())
			}
		}
	}

	br := cl.breaker(site)
	probe := false
	if br != nil {
		var ok bool
		ok, probe = br.Allow()
		if !ok {
			cl.reg.Counter("breaker_fastfail_total",
				metrics.Labels{Site: string(cl.self), Peer: string(site)}).Inc()
			return Response{}, wireStats{}, &SiteError{Site: site, Err: fmt.Errorf("%w (%s)", ErrCircuitOpen, addr)}
		}
	}
	// abandon releases a held half-open probe slot on the neutral exits
	// (context death says nothing about the peer, so neither Success nor
	// Failure applies) — without it the slot would leak and the breaker
	// could never probe this peer again.
	abandon := func() {
		if probe {
			br.ProbeDone()
		}
	}

	var (
		lastErr error
		stats   wireStats
	)
	p := cl.pool(addr)
	for attempt := 1; attempt <= cl.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			abandon()
			return Response{}, stats, fmt.Errorf("remote: call %s: %w", addr, err)
		}
		if attempt > 1 {
			cl.reg.Counter("call_retries_total",
				metrics.Labels{Site: string(cl.self), Peer: string(site)}).Inc()
			if !sleepCtx(ctx, cl.cfg.backoff(attempt-1)) {
				abandon()
				return Response{}, stats, fmt.Errorf("remote: call %s: %w", addr, ctx.Err())
			}
		}
		// Derive this attempt's timeout and wire budget from the remaining
		// context budget (the tighter bound wins).
		t := timeout
		r := req
		if dl, ok := ctx.Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				abandon()
				return Response{}, stats, fmt.Errorf("remote: call %s: %w", addr, context.DeadlineExceeded)
			}
			if rem < t {
				t = rem
			}
			r.DeadlineMicros = rem.Microseconds() + 1
		}
		pc, pooled, err := p.get()
		if err != nil {
			lastErr = err
			continue
		}
		resp, w, err := pc.exchange(ctx, r, t)
		stats.Sent += w.Sent
		stats.Received += w.Received
		if err != nil && pooled && ctx.Err() == nil {
			// A connection that idled in the pool across a peer restart is
			// dead on first use; that says nothing about the peer's current
			// health. Discard it and redial once for free — this probe does
			// not consume a retry attempt, back off, or (on success) charge
			// the breaker.
			pc.close()
			cl.reg.Counter("pool_stale_total",
				metrics.Labels{Site: string(cl.self), Peer: string(site)}).Inc()
			if pc, err = p.dial(); err != nil {
				lastErr = err
				continue
			}
			resp, w, err = pc.exchange(ctx, r, t)
			stats.Sent += w.Sent
			stats.Received += w.Received
		}
		if err != nil {
			// The connection is torn; never reuse it.
			pc.close()
			if ctxErr := ctx.Err(); ctxErr != nil {
				// The context tore it, not the peer: typed return, no retry,
				// no breaker charge.
				abandon()
				return Response{}, stats, fmt.Errorf("remote: call %s: %w", addr, ctxErr)
			}
			lastErr = fmt.Errorf("%s: %w", addr, err)
			continue
		}
		p.put(pc)
		if br != nil {
			br.Success()
		}
		if resp.Err == errDeadline {
			// The budget died on the server's side of the wire; same typed
			// error as if it had died here.
			return Response{}, stats, fmt.Errorf("remote: %s: %w", addr, context.DeadlineExceeded)
		}
		if resp.Err == errUnavailable {
			// Injected fault: the site is "down" by decree; degrade like a
			// real outage.
			return Response{}, stats, &SiteError{Site: site, Err: errors.New(resp.Err)}
		}
		if resp.Err != "" {
			// The site answered: it is alive, the request itself is bad.
			return Response{}, stats, fmt.Errorf("remote: %s: %s", addr, resp.Err)
		}
		return resp, stats, nil
	}
	if br != nil {
		br.Failure()
	}
	cl.reg.Counter("call_failures_total",
		metrics.Labels{Site: string(cl.self), Peer: string(site)}).Inc()
	return Response{}, stats, &SiteError{Site: site, Err: lastErr}
}

// sleepCtx sleeps for d unless ctx dies first; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// IsInterrupted reports whether err carries a context cancellation or
// deadline expiry — from either side of the wire.
func IsInterrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsSiteUnavailable reports whether err marks a transport-level site
// failure (as opposed to an error the site answered deterministically).
func IsSiteUnavailable(err error) bool {
	var se *SiteError
	return errors.As(err, &se)
}
