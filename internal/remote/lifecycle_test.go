package remote

import (
	"fmt"
	"testing"

	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/store/wal"
	"github.com/hetfed/hetfed/internal/trace"
)

// TestCoordinatorCloseIdempotent covers the Close lifecycle: closing a
// coordinator that never made a call must not allocate a client, repeated
// Close calls are harmless, and a closed coordinator remains usable (the
// next call builds a fresh client).
func TestCoordinatorCloseIdempotent(t *testing.T) {
	fresh := &Coordinator{ID: "G"}
	fresh.Close()
	fresh.Close()
	if fresh.cl != nil {
		t.Fatal("Close allocated a client on a coordinator that never called anyone")
	}

	coord, cleanup := startCluster(t)
	defer cleanup()
	if err := coord.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if coord.cl == nil {
		t.Fatal("Ping did not build the client")
	}
	coord.Close()
	if coord.cl != nil {
		t.Fatal("client survived Close")
	}
	coord.Close() // second Close is a no-op, not a panic or double-free
	// The coordinator stays usable: the next call builds a fresh client.
	if err := coord.Ping(); err != nil {
		t.Fatalf("Ping after Close: %v", err)
	}
	if coord.cl == nil {
		t.Fatal("Ping after Close did not rebuild the client")
	}
	coord.Close()
}

// TestResyncOverflowWithoutLogDropsAndMarks pins the lossy fallback: with no
// DeltaLog an overflowing pending-delta queue drops its oldest entries,
// counts them, and marks the peer needs-rebuild — a sticky mark, since
// nothing durable can close the gap.
func TestResyncOverflowWithoutLogDropsAndMarks(t *testing.T) {
	coord := &Coordinator{ID: "G", Metrics: metrics.New()}
	const extra = 5
	for i := 0; i < maxPendingDeltas+extra; i++ {
		d := &BindDelta{Class: "Teacher", GOid: object.GOid(fmt.Sprintf("gt%03d", i)), Site: "DB2", LOid: object.LOid(fmt.Sprintf("t%03d'", i))}
		coord.queueResync("DB3", d, 0)
	}
	if got := len(coord.resync["DB3"]); got != maxPendingDeltas {
		t.Errorf("queue length = %d, want %d", got, maxPendingDeltas)
	}
	if st := coord.ResyncStates()["DB3"]; st != "needs-rebuild" {
		t.Errorf("ResyncStates[DB3] = %q, want needs-rebuild", st)
	}
	snap := coord.Metrics.Snapshot()
	if got := snap.CounterValue("replica_resync_dropped_total", metrics.Labels{Site: "G", Peer: "DB3"}); got != extra {
		t.Errorf("replica_resync_dropped_total = %d, want %d", got, extra)
	}
	// The oldest entries were the ones dropped: the queue now starts at
	// delta #extra.
	if got := coord.resync["DB3"][0].delta.GOid; got != object.GOid(fmt.Sprintf("gt%03d", extra)) {
		t.Errorf("queue head = %s, want gt%03d", got, extra)
	}
}

// TestResyncOverflowRebuildsFromLog is the durable path end to end: every
// bind is appended to a WAL-backed delta log, the peer's queue overflows
// (the in-memory deltas are released — the log holds them), and the next
// replay rebuilds the peer's replica from the log, delivering the deltas
// the queue could no longer hold.
func TestResyncOverflowRebuildsFromLog(t *testing.T) {
	deltaLog, _, err := wal.OpenLog(wal.Options{Dir: t.TempDir(), Site: "G"})
	if err != nil {
		t.Fatal(err)
	}
	defer deltaLog.Close()

	coord := &Coordinator{ID: "G", Metrics: metrics.New(), DeltaLog: deltaLog}
	const total = maxPendingDeltas + 4
	for i := 0; i < total; i++ {
		goid := object.GOid(fmt.Sprintf("gt%03d", 100+i))
		loid := object.LOid(fmt.Sprintf("t%03d'", 100+i))
		seq, err := deltaLog.AppendBind("Teacher", goid, "DB2", loid)
		if err != nil {
			t.Fatal(err)
		}
		coord.queueResync("DB3", &BindDelta{Class: "Teacher", GOid: goid, Site: "DB2", LOid: loid}, seq)
	}
	// The overflow released the queue into the log's care: only the deltas
	// queued after the overflow are held in memory.
	if got := len(coord.resync["DB3"]); got != total-(maxPendingDeltas+1) {
		t.Errorf("post-overflow queue length = %d, want %d", got, total-(maxPendingDeltas+1))
	}
	if st := coord.ResyncStates()["DB3"]; st != "needs-rebuild" {
		t.Fatalf("ResyncStates[DB3] = %q, want needs-rebuild", st)
	}

	// Bring up the peer and replay. The rebuild must cover the whole gap —
	// including every delta the overflow dropped from memory.
	fx := school.New()
	srv, err := NewServer(ServerConfig{
		DB:         fx.Databases["DB3"],
		Global:     fx.Global,
		Tables:     fx.Mapping,
		Signatures: signature.Build(fx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	coord.Sites = map[object.SiteID]string{"DB3": srv.Addr()}

	coord.replayResync("DB3")

	replica := srv.cfg.Tables.Table("Teacher")
	for i := 0; i < total; i++ {
		goid := object.GOid(fmt.Sprintf("gt%03d", 100+i))
		if loid, ok := replica.LOidAt(goid, "DB2"); !ok || loid != object.LOid(fmt.Sprintf("t%03d'", 100+i)) {
			t.Fatalf("replica after rebuild: %s@DB2 = (%q, %v), want (t%03d', true)", goid, loid, ok, 100+i)
		}
	}
	if states := coord.ResyncStates(); len(states) != 0 {
		t.Errorf("ResyncStates after rebuild = %v, want empty", states)
	}
	snap := coord.Metrics.Snapshot()
	labels := metrics.Labels{Site: "G", Peer: "DB3"}
	if got := snap.CounterValue("replica_rebuild_total", labels); got != 1 {
		t.Errorf("replica_rebuild_total = %d, want 1", got)
	}
	if got := snap.CounterValue("replica_resync_total", labels); got != total {
		t.Errorf("replica_resync_total = %d, want %d", got, total)
	}
	if got := snap.CounterValue("replica_needs_rebuild", labels); got != 0 {
		t.Errorf("replica_needs_rebuild gauge = %d, want 0", got)
	}
}
