package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// allow is the admission half of breaker.Allow for assertions that do not
// care about probe-slot ownership.
func allow(b *breaker) bool {
	ok, _ := b.Allow()
	return ok
}

// TestBreakerLifecycle walks the full circuit: closed under the failure
// threshold, open at the threshold, half-open after the cooldown, re-open on
// a failed probe, closed on a successful one — with transitions observed.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second, func(from, to string) {
		transitions = append(transitions, from+">"+to)
	})
	b.now = func() time.Time { return now }

	if st := b.State(); st != BreakerClosed {
		t.Fatalf("initial state = %s", st)
	}
	// Failures below the threshold keep the circuit closed.
	b.Failure()
	b.Failure()
	if !allow(b) || b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %s", b.State())
	}
	// The third consecutive failure opens it: calls fail fast.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %s", b.State())
	}
	if allow(b) {
		t.Fatal("open breaker admitted a call")
	}
	// After the cooldown exactly one probe is admitted.
	now = now.Add(6 * time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s", st)
	}
	if !allow(b) {
		t.Fatal("half-open breaker refused the probe")
	}
	if allow(b) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe re-opens the circuit for another cooldown.
	b.Failure()
	if b.State() != BreakerOpen || allow(b) {
		t.Fatalf("state after failed probe = %s", b.State())
	}
	// Next cooldown: a successful probe closes the circuit for good.
	now = now.Add(6 * time.Second)
	if !allow(b) {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !allow(b) {
		t.Fatalf("state after successful probe = %s", b.State())
	}

	want := []string{
		"closed>open",
		"open>half-open",
		"half-open>open",
		"open>half-open",
		"half-open>closed",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
}

// TestBreakerDisabled: threshold 0 never opens (the client skips the breaker
// entirely, but the breaker itself must also stay sane).
func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success() // run broken: the counter starts over
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %s after interleaved successes", st)
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %s after a fresh run of 3 failures", st)
	}
}

// TestClientPoolsConnections: repeated calls to the same site must reuse one
// pooled connection instead of dialing per request.
func TestClientPoolsConnections(t *testing.T) {
	_, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	srv := servers["DB1"]

	cl := newClient("TEST", CallConfig{}, nil)
	defer cl.close()
	for i := 0; i < 5; i++ {
		if _, _, err := cl.call("DB1", srv.Addr(), Request{Kind: kindPing}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	p := cl.pool(srv.Addr())
	if n := p.size(); n != 1 {
		t.Errorf("idle pool size after 5 sequential calls = %d, want 1 (reused)", n)
	}
}

// TestClientBreakerFastFail: once the breaker opens, calls to the dead site
// fail immediately with ErrCircuitOpen instead of re-dialing.
func TestClientBreakerFastFail(t *testing.T) {
	cl := newClient("TEST", CallConfig{
		Attempts:         1,
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	}, nil)
	defer cl.close()

	// 127.0.0.1:1 refuses connections; two failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := cl.call("dead", "127.0.0.1:1", Request{Kind: kindPing}); !IsSiteUnavailable(err) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	start := time.Now()
	_, _, err := cl.call("dead", "127.0.0.1:1", Request{Kind: kindPing})
	if !IsSiteUnavailable(err) {
		t.Fatalf("fast-fail error: %v", err)
	}
	if !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("fast-fail error = %v, want ErrCircuitOpen", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("open-breaker call took %v, expected immediate fast-fail", d)
	}
	if st := cl.BreakerStates()["dead"]; st != BreakerOpen {
		t.Errorf("breaker state = %s, want open", st)
	}
}

// TestBreakerConcurrentProbers: when the cooldown elapses, any number of
// concurrent callers must resolve to exactly one admitted probe (the probe
// slot) with everyone else fast-failing as open — the half-open state must
// not thunder the recovering peer.
func TestBreakerConcurrentProbers(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure() // threshold 1: open immediately
	now = now.Add(2 * time.Second)

	const callers = 32
	var (
		admitted atomic.Int64
		probes   atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, probe := b.Allow()
			if ok {
				admitted.Add(1)
			}
			if probe {
				probes.Add(1)
			}
			if ok != probe {
				t.Errorf("half-open admission without probe ownership: ok=%v probe=%v", ok, probe)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 || probes.Load() != 1 {
		t.Fatalf("half-open admitted %d callers (%d probes), want exactly 1",
			admitted.Load(), probes.Load())
	}
}

// TestBreakerAbandonedProbeReleasesSlot: a probe whose call dies on its
// context produces no Success/Failure verdict; ProbeDone must release the
// slot so a later caller can probe — without it the breaker wedges in
// half-open forever.
func TestBreakerAbandonedProbeReleasesSlot(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure()
	now = now.Add(2 * time.Second)

	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("first caller after cooldown: ok=%v probe=%v", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	b.ProbeDone() // the probe's context died: no verdict
	ok, probe = b.Allow()
	if !ok || !probe {
		t.Fatalf("caller after abandoned probe: ok=%v probe=%v — slot leaked", ok, probe)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %s", b.State())
	}
}

// TestClientAbandonedProbeDoesNotWedgeBreaker drives the leak end-to-end
// through the client: a half-open probe call whose context is already dead
// returns without a verdict, and the next caller must still be able to
// probe (and close the circuit) rather than fast-failing forever.
func TestClientAbandonedProbeDoesNotWedgeBreaker(t *testing.T) {
	_, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	addr := servers["DB1"].Addr()

	cl := newClient("TEST", CallConfig{
		Attempts:         1,
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Millisecond,
	}, nil)
	defer cl.close()

	// Open the breaker with a failure against a dead port.
	if _, _, err := cl.call("DB1", "127.0.0.1:1", Request{Kind: kindPing}); !IsSiteUnavailable(err) {
		t.Fatalf("seed failure: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // cooldown elapses: half-open

	// The admitted probe is abandoned by its context before doing anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cl.callCtx(ctx, "DB1", addr, Request{Kind: kindPing}); !IsInterrupted(err) {
		t.Fatalf("dead-context probe error = %v, want interrupted", err)
	}

	// The peer is actually fine at addr; the next caller must get the probe
	// slot and close the circuit.
	if _, _, err := cl.call("DB1", addr, Request{Kind: kindPing}); err != nil {
		t.Fatalf("post-abandon probe failed: %v", err)
	}
	if st := cl.BreakerStates()["DB1"]; st != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %s, want closed", st)
	}
}
