package remote

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full circuit: closed under the failure
// threshold, open at the threshold, half-open after the cooldown, re-open on
// a failed probe, closed on a successful one — with transitions observed.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second, func(from, to string) {
		transitions = append(transitions, from+">"+to)
	})
	b.now = func() time.Time { return now }

	if st := b.State(); st != BreakerClosed {
		t.Fatalf("initial state = %s", st)
	}
	// Failures below the threshold keep the circuit closed.
	b.Failure()
	b.Failure()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %s", b.State())
	}
	// The third consecutive failure opens it: calls fail fast.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	// After the cooldown exactly one probe is admitted.
	now = now.Add(6 * time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe re-opens the circuit for another cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state after failed probe = %s", b.State())
	}
	// Next cooldown: a successful probe closes the circuit for good.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state after successful probe = %s", b.State())
	}

	want := []string{
		"closed>open",
		"open>half-open",
		"half-open>open",
		"open>half-open",
		"half-open>closed",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
}

// TestBreakerDisabled: threshold 0 never opens (the client skips the breaker
// entirely, but the breaker itself must also stay sane).
func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success() // run broken: the counter starts over
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %s after interleaved successes", st)
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %s after a fresh run of 3 failures", st)
	}
}

// TestClientPoolsConnections: repeated calls to the same site must reuse one
// pooled connection instead of dialing per request.
func TestClientPoolsConnections(t *testing.T) {
	_, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	srv := servers["DB1"]

	cl := newClient("TEST", CallConfig{}, nil)
	defer cl.close()
	for i := 0; i < 5; i++ {
		if _, _, err := cl.call("DB1", srv.Addr(), Request{Kind: kindPing}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	p := cl.pool(srv.Addr())
	if n := p.size(); n != 1 {
		t.Errorf("idle pool size after 5 sequential calls = %d, want 1 (reused)", n)
	}
}

// TestClientBreakerFastFail: once the breaker opens, calls to the dead site
// fail immediately with ErrCircuitOpen instead of re-dialing.
func TestClientBreakerFastFail(t *testing.T) {
	cl := newClient("TEST", CallConfig{
		Attempts:         1,
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	}, nil)
	defer cl.close()

	// 127.0.0.1:1 refuses connections; two failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := cl.call("dead", "127.0.0.1:1", Request{Kind: kindPing}); !IsSiteUnavailable(err) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	start := time.Now()
	_, _, err := cl.call("dead", "127.0.0.1:1", Request{Kind: kindPing})
	if !IsSiteUnavailable(err) {
		t.Fatalf("fast-fail error: %v", err)
	}
	if !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("fast-fail error = %v, want ErrCircuitOpen", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("open-breaker call took %v, expected immediate fast-fail", d)
	}
	if st := cl.BreakerStates()["dead"]; st != BreakerOpen {
		t.Errorf("breaker state = %s, want open", st)
	}
}
