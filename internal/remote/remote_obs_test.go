package remote

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// startObservedCluster is startCluster with a tracer and metrics registry
// wired into every server and the coordinator.
func startObservedCluster(t *testing.T) (*Coordinator, map[object.SiteID]*Server, func()) {
	t.Helper()
	fx := school.New()
	sigs := signature.Build(fx.Databases)

	servers := make(map[object.SiteID]*Server, len(fx.Databases))
	addrs := make(map[object.SiteID]string, len(fx.Databases))
	for site, db := range fx.Databases {
		srv, err := NewServer(ServerConfig{
			DB:         db,
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
			Tracer:     &trace.Tracer{},
			Metrics:    metrics.New(),
		})
		if err != nil {
			t.Fatalf("NewServer(%s): %v", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%s): %v", site, err)
		}
		servers[site] = srv
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}
	coord := &Coordinator{
		ID:      "G",
		Global:  fx.Global,
		Tables:  fx.Mapping,
		Sites:   addrs,
		Tracer:  &trace.Tracer{},
		Metrics: metrics.New(),
	}
	cleanup := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	return coord, servers, cleanup
}

// TestSpanPropagationAcrossWire runs a BL query over TCP and checks the
// span context survives the gob hop twice: coordinator → site (serve spans
// parent on the coordinator's rpc spans) and site → peer (check spans
// parent on the dispatching site's serve span).
func TestSpanPropagationAcrossWire(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()

	if _, _, err := coord.Query(school.Q1, exec.BL); err != nil {
		t.Fatal(err)
	}

	// The coordinator side: a root span plus rpc spans, all sharing one query ID.
	var qid string
	rpcIDs := map[trace.SpanID]bool{}
	for _, sp := range coord.Tracer.Spans() {
		if sp.Parent == 0 {
			if sp.Algorithm != "BL" || sp.Query == "" {
				t.Errorf("root span = %+v", sp)
			}
			qid = sp.Query
		}
		if strings.HasPrefix(sp.Name, "rpc:") {
			rpcIDs[sp.ID] = true
		}
	}
	if qid == "" || len(rpcIDs) == 0 {
		t.Fatalf("coordinator recorded no query (qid=%q, %d rpc spans)", qid, len(rpcIDs))
	}

	// Server side: serve:local spans must adopt the propagated rpc span IDs
	// as parents; serve:check spans must adopt the dispatching site's
	// serve:local span ID.
	localIDs := map[trace.SpanID]bool{}
	var localSpans, checkSpans []trace.Span
	for site, srv := range servers {
		for _, sp := range srv.cfg.Tracer.Spans() {
			if sp.Query != qid {
				continue
			}
			if sp.Algorithm != "BL" {
				t.Errorf("site %s: span alg = %q", site, sp.Algorithm)
			}
			switch sp.Name {
			case "serve:local":
				localIDs[sp.ID] = true
				localSpans = append(localSpans, sp)
			case "serve:check":
				checkSpans = append(checkSpans, sp)
			}
		}
	}
	if len(localSpans) == 0 || len(checkSpans) == 0 {
		t.Fatalf("spans: %d local, %d check", len(localSpans), len(checkSpans))
	}
	for _, sp := range localSpans {
		if !rpcIDs[sp.Parent] {
			t.Errorf("serve:local @%s parent %d not among the coordinator's rpc spans %v",
				sp.Site, sp.Parent, rpcIDs)
		}
		if sp.Phases != "PO" {
			t.Errorf("serve:local phases = %q, want PO", sp.Phases)
		}
	}
	for _, sp := range checkSpans {
		if !localIDs[sp.Parent] {
			t.Errorf("serve:check @%s parent %d not among the serve:local spans %v",
				sp.Site, sp.Parent, localIDs)
		}
		if sp.Phases != "O" {
			t.Errorf("serve:check phases = %q, want O", sp.Phases)
		}
	}
}

// TestRemoteProfileCarriesSiteIO: the serving sites stamp disk_bytes/cpu_ops
// on their spans, those spans ship back over the wire, and BuildProfile
// attributes them to the site — so the coordinator's recorded profile carries
// the per-site event counts the adaptive calibrator divides by.
func TestRemoteProfileCarriesSiteIO(t *testing.T) {
	coord, _, cleanup := startObservedCluster(t)
	defer cleanup()
	rec := obs.NewRecorder(obs.RecorderConfig{Site: "G"})
	coord.Recorder = rec

	if _, _, err := coord.Query(school.Q1, exec.BL); err != nil {
		t.Fatal(err)
	}
	p := rec.Last()
	if p == nil {
		t.Fatal("no profile recorded")
	}
	if len(p.IO) == 0 {
		t.Fatal("profile has no per-site IO counts")
	}
	var sawWork bool
	for site, io := range p.IO {
		if site == "G" {
			t.Errorf("coordinator %q attributed IO %+v; it reads no extents", site, io)
		}
		if io.DiskBytes > 0 && io.CPUOps > 0 {
			sawWork = true
		}
	}
	if !sawWork {
		t.Errorf("no serving site reported both disk and cpu counts: %+v", p.IO)
	}
}

// TestUnknownKindCountsError: a garbage request kind is answered with an
// error and shows up in the server's error counter.
func TestUnknownKindCountsError(t *testing.T) {
	_, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	srv := servers["DB1"]

	if _, err := testCall(t, srv.Addr(), Request{Kind: "nonsense"}); err == nil ||
		!strings.Contains(err.Error(), "unknown request kind") {
		t.Fatalf("bad kind: %v", err)
	}
	snap := srv.cfg.Metrics.Snapshot()
	if n := snap.CounterValue("request_errors_total", metrics.Labels{Site: "DB1"}); n != 1 {
		t.Errorf("request_errors_total = %d, want 1", n)
	}
	// The failed request was still counted and timed.
	if n := snap.CounterValue("requests_total", metrics.Labels{Site: "DB1"}); n != 1 {
		t.Errorf("requests_total = %d, want 1", n)
	}
}

// TestCallTimeoutOnDeadPeer: a peer that accepts the connection but never
// answers must fail the call within the deadline instead of hanging it.
func TestCallTimeoutOnDeadPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request and go silent until the test ends.
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					select {
					case <-done:
						return
					default:
					}
				}
			}(conn)
		}
	}()

	// Timeouts are per-client config now (no mutable package globals), so
	// a tight deadline here cannot race other tests.
	cl := newClient("TEST", CallConfig{CallTimeout: 200 * time.Millisecond, Attempts: 1}, nil)
	defer cl.close()

	start := time.Now()
	_, _, err = cl.call("silent", ln.Addr().String(), Request{Kind: kindPing})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call to a silent peer succeeded")
	}
	if elapsed > 5*time.Second {
		t.Errorf("call took %v, deadline did not bite", elapsed)
	}
	if !IsSiteUnavailable(err) {
		t.Errorf("error is not a site failure: %v", err)
	}
	if !strings.Contains(err.Error(), "receive") {
		t.Errorf("unexpected error: %v", err)
	}
}
