package remote

import (
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrameBytes caps one gob-decoded message on an accepted
// connection. gob allocates buffers according to lengths read off the wire,
// so an unlimited decode lets one malformed (or hostile) frame balloon the
// server's memory; 8 MiB comfortably covers the largest legitimate reply in
// the workloads while stopping runaway frames.
const DefaultMaxFrameBytes = 8 << 20

// ErrFrameTooLarge marks a gob message that exceeded the connection's frame
// limit. The connection is torn down — a gob stream cannot be resynchronized
// mid-message — and frames_rejected_total counts the event.
var ErrFrameTooLarge = errors.New("remote: frame exceeds maximum size")

// frameLimitReader bounds the bytes one gob message may pull off a
// connection. The server resets it before each Decode; a message that reads
// past the limit trips the reader, which then refuses further reads with
// ErrFrameTooLarge.
//
// The accounting is per-decode, not per-wire-frame: gob's internal buffering
// may read a little of the next message into the current window, so the
// effective limit is approximate by up to the decoder's read-ahead (~4 KiB)
// — negligible against a megabyte-scale limit, and always on the permissive
// side.
type frameLimitReader struct {
	r       io.Reader
	limit   int64
	n       int64
	tripped bool
}

func (f *frameLimitReader) Read(p []byte) (int, error) {
	if f.limit <= 0 {
		return f.r.Read(p)
	}
	if f.n >= f.limit {
		f.tripped = true
		return 0, fmt.Errorf("%w (limit %d bytes)", ErrFrameTooLarge, f.limit)
	}
	if int64(len(p)) > f.limit-f.n {
		p = p[:f.limit-f.n]
	}
	n, err := f.r.Read(p)
	f.n += int64(n)
	return n, err
}

// reset starts a new message window.
func (f *frameLimitReader) reset() {
	f.n = 0
	f.tripped = false
}
