package remote

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen fails a call fast when the target site's circuit breaker
// is open: the site failed repeatedly and its cooldown has not elapsed, so
// dialing it again would only stall the query.
var ErrCircuitOpen = errors.New("circuit open")

// Breaker states.
const (
	// BreakerClosed passes calls through (the healthy state).
	BreakerClosed = "closed"
	// BreakerOpen fails calls fast until the cooldown elapses.
	BreakerOpen = "open"
	// BreakerHalfOpen lets one probe through after the cooldown; its
	// outcome closes or re-opens the circuit.
	BreakerHalfOpen = "half-open"
)

// breaker is a per-site circuit breaker: it opens after a run of
// consecutive transport failures, fails calls fast while open, and after a
// cooldown admits a single half-open probe whose outcome decides between
// closing the circuit and another cooldown.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	// onTransition, when set, observes every state change (for metrics and
	// logs). Called outside the lock.
	onTransition func(from, to string)

	mu       sync.Mutex
	state    string
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(from, to string)) *breaker {
	return &breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		now:          time.Now,
		onTransition: onTransition,
		state:        BreakerClosed,
	}
}

// State reports the breaker's current state, promoting open to half-open
// when the cooldown has elapsed.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed and, when it may, whether the
// caller holds the half-open probe slot. While open it fails fast; after
// the cooldown it admits exactly one probe at a time (half-open) and every
// extra caller fast-fails as if the circuit were still open. A probe
// holder MUST settle the slot: Success or Failure when the transport
// produced a verdict, ProbeDone when the call was abandoned without one
// (context death) — otherwise the slot leaks and no later caller can ever
// probe the peer again.
func (b *breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true, false
	case BreakerHalfOpen:
		admit := !b.probing
		b.probing = admit || b.probing
		b.mu.Unlock()
		return admit, admit
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.mu.Unlock()
		b.notify(BreakerOpen, BreakerHalfOpen)
		return true, true
	}
}

// ProbeDone releases the half-open probe slot without deciding the
// circuit: the probe's call was abandoned (its context died) before the
// transport produced a verdict, so the peer's health is still unknown and
// the next caller gets to probe. A slot already settled by Success or
// Failure is unaffected.
func (b *breaker) ProbeDone() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Success records a completed call and closes the circuit.
func (b *breaker) Success() {
	b.mu.Lock()
	from := b.state
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	if from != BreakerClosed {
		b.notify(from, BreakerClosed)
	}
}

// Failure records a failed call: a half-open probe re-opens the circuit
// immediately, and the threshold's worth of consecutive failures opens it
// from closed.
func (b *breaker) Failure() {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	default:
		b.failures++
		if b.state == BreakerClosed && b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.notify(from, to)
	}
}

func (b *breaker) notify(from, to string) {
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}
