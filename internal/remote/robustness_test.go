package remote

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// startRobustCluster is startObservedCluster with a per-site ServerConfig
// hook, for tests that need faults, frame limits or idle timeouts.
func startRobustCluster(t *testing.T, mod func(site object.SiteID, cfg *ServerConfig)) (*Coordinator, map[object.SiteID]*Server, func()) {
	t.Helper()
	fx := school.New()
	sigs := signature.Build(fx.Databases)

	servers := make(map[object.SiteID]*Server, len(fx.Databases))
	addrs := make(map[object.SiteID]string, len(fx.Databases))
	for site, db := range fx.Databases {
		cfg := ServerConfig{
			DB:         db,
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
			Tracer:     &trace.Tracer{},
			Metrics:    metrics.New(),
		}
		if mod != nil {
			mod(site, &cfg)
		}
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatalf("NewServer(%s): %v", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%s): %v", site, err)
		}
		servers[site] = srv
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}
	coord := &Coordinator{
		ID:      "G",
		Global:  fx.Global,
		Tables:  fx.Mapping,
		Sites:   addrs,
		Tracer:  &trace.Tracer{},
		Metrics: metrics.New(),
	}
	cleanup := func() {
		coord.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
	return coord, servers, cleanup
}

// delayAll wedges every site by d per served operation (cancellable: the
// stall observes the request's wire budget).
func delayAll(d time.Duration) func(object.SiteID, *ServerConfig) {
	return func(site object.SiteID, cfg *ServerConfig) {
		cfg.Faults = fabric.NewFaultPlan().Delay(site, float64(d.Microseconds()))
	}
}

func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, baseline %d", n, baseline)
}

// TestClusterDeadlineCutsDelayedSites is the acceptance scenario over real
// TCP: every site wedged by a 5s fault, a 50ms coordinator deadline. Each
// strategy must return a sound partial answer well within the fault's
// stall (generous 2s bound for slow CI), release its admission slot for
// the next query, and leave no goroutines behind.
func TestClusterDeadlineCutsDelayedSites(t *testing.T) {
	baseline := runtime.NumGoroutine()
	coord, _, cleanup := startRobustCluster(t, delayAll(5*time.Second))
	defer cleanup()
	coord.Deadline = 50 * time.Millisecond
	coord.MaxConcurrent = 1 // serial queries double as the slot-release check

	for _, alg := range []exec.Algorithm{exec.CA, exec.BL, exec.PL} {
		start := time.Now()
		ans, _, err := coord.Query(school.Q1, alg)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%v: over-deadline query failed instead of degrading: %v", alg, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%v: returned after %v — the deadline did not cut the 5s stall", alg, elapsed)
		}
		if ans.Outcome != federation.OutcomeDeadline {
			t.Errorf("%v: outcome = %q, want %q", alg, ans.Outcome, federation.OutcomeDeadline)
		}
		if !ans.Degraded || len(ans.Unavailable) == 0 {
			t.Errorf("%v: Degraded=%v Unavailable=%v, want degraded with sites listed",
				alg, ans.Degraded, ans.Unavailable)
		}
		if len(ans.Certain) != 0 {
			t.Errorf("%v: certain = %v, want none (no site answered in budget)", alg, ans.Certain)
		}
	}
	snap := coord.Metrics.Snapshot()
	var outcomes int64
	for _, alg := range []string{"CA", "BL", "PL"} {
		outcomes += snap.CounterValue("deadline_exceeded_total", metrics.Labels{Site: "G", Alg: alg})
	}
	if outcomes != 3 {
		t.Errorf("deadline_exceeded_total across CA/BL/PL = %d, want 3", outcomes)
	}
	if got := snap.CounterValue("queries_shed_total", metrics.Labels{Site: "G"}); got != 0 {
		t.Errorf("queries_shed_total = %d, want 0 (slots were released, nothing queued)", got)
	}
	// Tear the cluster down first: accept loops and handlers parked on
	// pooled idle connections go away, so whatever remains above the
	// baseline is a genuine per-query leak. cleanup is idempotent — the
	// deferred call becomes a no-op.
	cleanup()
	settleGoroutines(t, baseline)
}

// TestClusterCancelReleasesSlot cancels a query mid-flight (the client
// walked away) and verifies the admission slot comes back: a follow-up
// query is admitted immediately instead of being shed from the queue.
func TestClusterCancelReleasesSlot(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// A client disconnect is not forwarded to a site already serving a
	// deadline-free request, so the injected stall bounds how long server
	// handlers linger; keep it short so the leak check stays meaningful.
	coord, _, cleanup := startRobustCluster(t, delayAll(500*time.Millisecond))
	defer cleanup()
	coord.MaxConcurrent = 1

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	ans, _, err := coord.QueryContext(ctx, school.Q1, exec.BL)
	if err != nil {
		t.Fatalf("cancelled query failed instead of degrading: %v", err)
	}
	if ans.Outcome != federation.OutcomeCanceled {
		t.Errorf("outcome = %q, want %q", ans.Outcome, federation.OutcomeCanceled)
	}

	// If the cancelled query leaked its slot, this one would queue forever
	// and be shed when its own deadline dies; admitted immediately, it runs
	// and comes back as a deadline-bounded partial answer instead.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	_, _, err = coord.QueryContext(ctx2, school.Q1, exec.BL)
	if errors.Is(err, exec.ErrShed) {
		t.Fatalf("follow-up query was shed: the cancelled query did not release its slot")
	}
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if got := coord.Metrics.Snapshot().CounterValue("queries_shed_total", metrics.Labels{Site: "G"}); got != 0 {
		t.Errorf("queries_shed_total = %d, want 0", got)
	}
	cleanup() // see TestClusterDeadlineCutsDelayedSites
	settleGoroutines(t, baseline)
}

// TestClusterShedsUnderOverload wedges the single slot and fires doomed
// queries at the queue: each must be shed with the typed error before any
// network work, and the shed count must match.
func TestClusterShedsUnderOverload(t *testing.T) {
	coord, _, cleanup := startRobustCluster(t, delayAll(500*time.Millisecond))
	defer cleanup()
	coord.MaxConcurrent = 1

	slowCtx, slowCancel := context.WithCancel(context.Background())
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		coord.QueryContext(slowCtx, school.Q1, exec.BL)
	}()
	time.Sleep(30 * time.Millisecond) // let the slow query take the slot

	const doomed = 4
	for i := 0; i < doomed; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, _, err := coord.QueryContext(ctx, school.Q1, exec.BL)
		cancel()
		if !errors.Is(err, exec.ErrShed) || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("doomed query %d: err = %v, want ErrShed", i, err)
		}
	}
	slowCancel()
	<-slowDone
	if got := coord.Metrics.Snapshot().CounterValue("queries_shed_total", metrics.Labels{Site: "G"}); got != doomed {
		t.Errorf("queries_shed_total = %d, want %d", got, doomed)
	}
}

// TestServerRejectsOversizedFrame sends a request far beyond the server's
// frame cap: the connection is rejected (the call fails) and the rejection
// is counted, while a normal-sized request on a fresh connection still
// works.
func TestServerRejectsOversizedFrame(t *testing.T) {
	coord, servers, cleanup := startRobustCluster(t, func(site object.SiteID, cfg *ServerConfig) {
		cfg.MaxFrameBytes = 16 << 10
	})
	defer cleanup()

	addr := coord.Sites["DB1"]
	if _, err := testCall(t, addr, Request{
		Kind:  kindRetrieve,
		Query: "select name from Student where address.city = \"" + strings.Repeat("x", 1<<20) + "\"",
	}); err == nil {
		t.Fatal("1MiB frame accepted despite a 16KiB cap")
	}
	snap := servers["DB1"].cfg.Metrics.Snapshot()
	if got := snap.CounterValue("frames_rejected_total", metrics.Labels{Site: "DB1"}); got != 1 {
		t.Errorf("frames_rejected_total = %d, want 1", got)
	}
	// The limit polices frames, not the site: normal traffic still serves.
	if _, err := testCall(t, addr, Request{Kind: kindPing}); err != nil {
		t.Errorf("ping after rejected frame: %v", err)
	}
}

// TestServerReapsIdleConnections opens a raw connection, sends nothing, and
// expects the server to close it once the idle window passes.
func TestServerReapsIdleConnections(t *testing.T) {
	coord, servers, cleanup := startRobustCluster(t, func(site object.SiteID, cfg *ServerConfig) {
		cfg.IdleTimeout = 50 * time.Millisecond
	})
	defer cleanup()

	conn, err := net.Dial("tcp", coord.Sites["DB2"])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open: read returned data")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := servers["DB2"].cfg.Metrics.Snapshot()
		if snap.CounterValue("conns_reaped_total", metrics.Labels{Site: "DB2"}) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conns_reaped_total never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResyncReplaysMissedDeltas: a bind broadcast that misses a dead
// replica is queued, and the next successful Ping replays it — the revived
// replica's mapping table catches up without a rebuild.
func TestResyncReplaysMissedDeltas(t *testing.T) {
	coord, servers, cleanup := startRobustCluster(t, nil)
	defer cleanup()
	coord.Call = fastFail

	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	servers["DB3"].Close()
	goid, err := coord.Insert("DB2", object.New("t9'", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"), "speciality": object.Str("database"),
	}))
	if err == nil {
		t.Fatal("insert with a dead replica reported no staleness")
	}
	if goid != "gt3" {
		t.Fatalf("insert GOid = %s, want gt3", goid)
	}

	// Revive DB3 with a fresh replica that never saw the delta, and point
	// the coordinator at it.
	freshFx := school.New()
	revived, err := NewServer(ServerConfig{
		DB:         freshFx.Databases["DB3"],
		Global:     freshFx.Global,
		Tables:     freshFx.Mapping,
		Signatures: signature.Build(freshFx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := revived.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	coord.Sites["DB3"] = revived.Addr()

	// The server owns a private clone of the tables it was built with; that
	// clone is the replica the resync must catch up.
	replica := revived.cfg.Tables
	if _, ok := replica.Table("Teacher").LOidAt("gt3", "DB2"); ok {
		t.Fatal("fresh replica already has the delta — test setup broken")
	}
	if err := coord.Ping(); err != nil {
		t.Fatalf("ping of the revived cluster: %v", err)
	}
	if loid, ok := replica.Table("Teacher").LOidAt("gt3", "DB2"); !ok || loid != "t9'" {
		t.Errorf("revived replica after resync: gt3@DB2 = (%q, %v), want (t9', true)", loid, ok)
	}
	snap := coord.Metrics.Snapshot()
	if got := snap.CounterValue("replica_resync_total", metrics.Labels{Site: "G", Peer: "DB3"}); got != 1 {
		t.Errorf("replica_resync_total = %d, want 1", got)
	}
	// A second ping has nothing left to replay.
	if err := coord.Ping(); err != nil {
		t.Fatalf("second ping: %v", err)
	}
	if got := coord.Metrics.Snapshot().CounterValue("replica_resync_total", metrics.Labels{Site: "G", Peer: "DB3"}); got != 1 {
		t.Errorf("replica_resync_total after second ping = %d, want still 1", got)
	}
}
