package remote

import (
	"strings"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
)

// fastFail is a call policy for tests that kill sites: one attempt, tight
// timeouts, no breaker hysteresis to keep assertions deterministic.
var fastFail = CallConfig{
	Attempts:         1,
	DialTimeout:      time.Second,
	CallTimeout:      5 * time.Second,
	BreakerThreshold: 0,
}

func goids(rows []federation.ResultRow) []object.GOid {
	out := make([]object.GOid, len(rows))
	for i, r := range rows {
		out[i] = r.GOid
	}
	return out
}

func sameGOids(got []object.GOid, want ...object.GOid) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func unavailableSites(ans *federation.Answer) []object.SiteID {
	out := make([]object.SiteID, len(ans.Unavailable))
	for i, f := range ans.Unavailable {
		out[i] = f.Site
	}
	return out
}

// TestClusterDegradedAssistantSiteDown kills DB3 — the site holding the
// teachers' specialities — and runs Q1 under every strategy. The query must
// not fail: what DB3 would have certified or eliminated stays maybe. Under
// every strategy the answer collapses to the same degraded shape: no
// certain rows, and gs2, gs3, gs4 maybe (gs3 can no longer be eliminated,
// gs4 can no longer be certified).
func TestClusterDegradedAssistantSiteDown(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()
	if err := servers["DB3"].Close(); err != nil {
		t.Fatalf("killing DB3: %v", err)
	}

	for _, alg := range exec.AllAlgorithms() {
		ans, _, err := coord.Query(school.Q1, alg)
		if err != nil {
			t.Fatalf("%v: query failed instead of degrading: %v", alg, err)
		}
		if !ans.Degraded {
			t.Fatalf("%v: answer not marked degraded", alg)
		}
		downs := unavailableSites(ans)
		found := false
		for _, s := range downs {
			if s == "DB3" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: DB3 missing from unavailable sites %v", alg, downs)
		}
		if len(ans.Certain) != 0 {
			t.Errorf("%v: certain = %v, want none (nothing certifies without DB3)", alg, ans.Certain)
		}
		if got := goids(ans.Maybe); !sameGOids(got, "gs2", "gs3", "gs4") {
			t.Errorf("%v: maybe = %v, want [gs2 gs3 gs4]", alg, got)
		}
		for _, r := range ans.Maybe {
			if r.GOid == "gs4" {
				if len(r.Unknown) != 1 || r.Unknown[0] != 2 {
					t.Errorf("%v: gs4 unknown = %v, want [2] (speciality only)", alg, r.Unknown)
				}
			}
		}
	}
}

// TestClusterDegradedRootSiteDown kills DB2 — a root site of Student. The
// students stored only there (gs4, gs5) cannot be read at all; the paper's
// semantics still apply: what cannot be read cannot be eliminated, so they
// come back as synthesized all-unknown maybe rows instead of silently
// vanishing from the answer.
func TestClusterDegradedRootSiteDown(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()
	if err := servers["DB2"].Close(); err != nil {
		t.Fatalf("killing DB2: %v", err)
	}

	for _, alg := range exec.AllAlgorithms() {
		ans, _, err := coord.Query(school.Q1, alg)
		if err != nil {
			t.Fatalf("%v: query failed instead of degrading: %v", alg, err)
		}
		if !ans.Degraded {
			t.Fatalf("%v: answer not marked degraded", alg)
		}
		if len(ans.Certain) != 0 {
			t.Errorf("%v: certain = %v, want none", alg, ans.Certain)
		}
		// SBL/SPL still eliminate gs1 through DB2's signature: derived data
		// held at the live sites stays readable evidence after DB2 dies.
		want := []object.GOid{"gs1", "gs2", "gs4", "gs5"}
		if alg == exec.SBL || alg == exec.SPL {
			want = []object.GOid{"gs2", "gs4", "gs5"}
		}
		if got := goids(ans.Maybe); !sameGOids(got, want...) {
			t.Errorf("%v: maybe = %v, want %v", alg, got, want)
		}
		// gs4 and gs5 exist only at DB2: their rows are synthesized with
		// every predicate unknown and no readable target values.
		for _, r := range ans.Maybe {
			if r.GOid != "gs4" && r.GOid != "gs5" {
				continue
			}
			if len(r.Unknown) != 3 {
				t.Errorf("%v: %s unknown = %v, want all 3 predicates", alg, r.GOid, r.Unknown)
			}
			for _, v := range r.Targets {
				if !v.IsNull() {
					t.Errorf("%v: %s has a non-null target %v from a dead site", alg, r.GOid, v)
				}
			}
		}
	}
}

// TestClusterDegradedMetrics: a degraded query is visible on the
// coordinator's registry — the unavailability and the degradation are both
// counted.
func TestClusterDegradedMetrics(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()
	servers["DB3"].Close()

	if _, _, err := coord.Query(school.Q1, exec.BL); err != nil {
		t.Fatal(err)
	}
	snap := coord.Metrics.Snapshot()
	if n := snap.CounterValue("degraded_queries_total", metrics.Labels{Site: "G", Alg: "BL"}); n != 1 {
		t.Errorf("degraded_queries_total = %d, want 1", n)
	}
	// Under BL the coordinator only talks to the root sites; DB3's
	// unavailability is observed by the sites dispatching checks to it, so
	// the counter lives on their registries.
	var observed int64
	for _, site := range []object.SiteID{"DB1", "DB2"} {
		s := servers[site].cfg.Metrics.Snapshot()
		observed += s.CounterValue("site_unavailable_total",
			metrics.Labels{Site: string(site), Peer: "DB3", Alg: "BL"})
	}
	if observed < 1 {
		t.Errorf("site_unavailable_total as observed by the root sites = %d, want >= 1", observed)
	}
}

// TestPingReportsAllDeadSites: the parallel ping names every unreachable
// site in one aggregate error, not just the first.
func TestPingReportsAllDeadSites(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()
	servers["DB1"].Close()
	servers["DB3"].Close()

	err := coord.Ping()
	if err == nil {
		t.Fatal("ping of a two-thirds-dead cluster succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"DB1", "DB3"} {
		if !strings.Contains(msg, "site "+want+" unreachable") {
			t.Errorf("ping error does not name %s: %v", want, msg)
		}
	}
	if strings.Contains(msg, "site DB2 unreachable") {
		t.Errorf("ping error names the live site DB2: %v", msg)
	}
}

// TestInsertBroadcastsToAllReplicas: with one replica down, the insert
// still updates every live replica, reports the stale one, and counts it.
func TestInsertBroadcastsToAllReplicas(t *testing.T) {
	coord, servers, cleanup := startObservedCluster(t)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()

	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	servers["DB3"].Close()

	// DB2 stores the object; DB1 (live) and DB3 (dead) are replicas.
	goid, err := coord.Insert("DB2", object.New("t9'", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"), "speciality": object.Str("database"),
	}))
	if err == nil {
		t.Fatal("insert with a dead replica reported no staleness")
	}
	if goid != "gt3" {
		t.Errorf("insert GOid = %s, want gt3 (binding happened despite the stale replica)", goid)
	}
	if !strings.Contains(err.Error(), "replica at DB3 is stale") {
		t.Errorf("error does not name the stale replica: %v", err)
	}
	if strings.Contains(err.Error(), "replica at DB1") {
		t.Errorf("error names the live replica DB1: %v", err)
	}
	snap := coord.Metrics.Snapshot()
	if n := snap.CounterValue("replica_stale_total", metrics.Labels{Site: "G", Peer: "DB3"}); n != 1 {
		t.Errorf("replica_stale_total = %d, want 1", n)
	}

	// The live replicas did get the delta: Q1 through DB1 and DB2 resolves
	// Tony's speciality predicate via the new assistant. (DB3 is dead, so
	// the answer is degraded, but the address check now dispatches through
	// the updated mapping.)
	ans, _, err := coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatalf("query after insert: %v", err)
	}
	if !ans.Degraded {
		t.Error("answer after killing DB3 not degraded")
	}
}
