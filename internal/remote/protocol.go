// Package remote deploys the federation over real TCP connections: every
// component database runs a Server exposing the site operations (retrieve,
// local query, assistant check), sites dispatch check requests directly to
// their peers, and a Coordinator client executes the CA/BL/PL strategies
// against the cluster. Messages are gob-encoded, one request per
// connection.
//
// The wire deployment differs from the simulated topology in one respect:
// assistant-check verdicts return to the site that requested the check and
// travel to the global processing site with its local result, instead of
// flowing to the global site directly. This keeps servers stateless; the
// certification outcome is identical.
package remote

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/object"
)

// Request kinds.
const (
	kindPing     = "ping"
	kindRetrieve = "retrieve"
	kindLocal    = "local"
	kindCheck    = "check"
	kindStore    = "store"
	kindBind     = "bind"
)

// Local query modes.
const (
	ModeBL  = "BL"
	ModePL  = "PL"
	ModeSBL = "SBL"
	ModeSPL = "SPL"
)

// Request is one site-server request.
type Request struct {
	Kind string
	// Query is the global query text for retrieve and local requests; the
	// site binds it against its own copy of the global schema.
	Query string
	// Mode selects the localized flow for local requests.
	Mode string
	// Items are the assistant checks for check requests.
	Items []federation.CheckItem
	// Store is the object to insert for store requests.
	Store *object.Object
	// Bind is the mapping-table delta for bind requests (replicated-table
	// maintenance).
	Bind *BindDelta
}

// BindDelta is one new mapping-table binding, broadcast by the mapping
// authority (the coordinator) to every site's replica after an insert.
type BindDelta struct {
	Class string
	GOid  object.GOid
	Site  object.SiteID
	LOid  object.LOid
}

// LocalReply is the reply to a local request: the site's local result plus
// the check verdicts it gathered from its peers.
type LocalReply struct {
	Result       federation.LocalResult
	CheckReplies []federation.CheckReply
}

// Response is one site-server response.
type Response struct {
	Err      string
	Retrieve federation.RetrieveReply
	Local    LocalReply
	Check    federation.CheckReply
}

// dialTimeout bounds connection establishment to a peer.
const dialTimeout = 5 * time.Second

// call performs one request/response exchange with a site server.
func call(addr string, req Request) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return Response{}, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	defer conn.Close()

	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, fmt.Errorf("remote: send to %s: %w", addr, err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("remote: receive from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return Response{}, fmt.Errorf("remote: %s: %s", addr, resp.Err)
	}
	return resp, nil
}
