// Package remote deploys the federation over real TCP connections: every
// component database runs a Server exposing the site operations (retrieve,
// local query, assistant check), sites dispatch check requests directly to
// their peers, and a Coordinator client executes the CA/BL/PL strategies
// against the cluster. Messages are gob-encoded over persistent pooled
// connections (a connection serves any number of requests in sequence);
// calls retry with jittered backoff and per-site circuit breakers fail fast
// when a site stays down — see CallConfig.
//
// Site failure degrades answers instead of failing queries: the coordinator
// collects per-site outcomes, certifies what the live sites contributed,
// and marks the answer Degraded with the unavailable sites recorded — the
// paper's maybe semantics extended to the coarsest missingness mechanism,
// an unreachable site.
//
// The wire deployment differs from the simulated topology in one respect:
// assistant-check verdicts return to the site that requested the check and
// travel to the global processing site with its local result, instead of
// flowing to the global site directly. This keeps servers stateless; the
// certification outcome is identical.
package remote

import (
	"io"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/trace"
)

// Request kinds.
const (
	kindPing       = "ping"
	kindRetrieve   = "retrieve"
	kindLocal      = "local"
	kindCheck      = "check"
	kindCheckBatch = "checkbatch"
	kindStore      = "store"
	kindBind       = "bind"
	// kindDigest exchanges per-class mapping-table digests: the reply
	// carries the server's digest snapshot, and the caller diffs it against
	// its own to find divergent classes (anti-entropy round, phase one).
	kindDigest = "digest"
	// kindRepair converges one divergent class: the request ships the
	// caller's bindings in the divergent buckets, the server applies the
	// ones it is missing and replies with its own bindings in those
	// buckets for the caller to apply — symmetric repair in one exchange.
	kindRepair = "repair"
)

// Local query modes.
const (
	ModeBL  = "BL"
	ModePL  = "PL"
	ModeSBL = "SBL"
	ModeSPL = "SPL"
)

// errDeadline is the server's answer when a request's wire budget
// (Request.DeadlineMicros) expired while serving it. The client maps it
// back onto context.DeadlineExceeded, so callers see the same typed error
// whether the budget died on their side of the wire or the server's — and
// the circuit breaker is never charged: an over-budget request says nothing
// about the site's health.
const errDeadline = "deadline exceeded at site"

// errUnavailable is the server's answer when its injected fault plan
// (ServerConfig.Faults) marks the site down. The client maps it onto a
// SiteError, so an injected outage degrades queries exactly like a real
// one, without tearing connections.
const errUnavailable = "site unavailable (injected fault)"

// TraceContext propagates span context across the wire: a server handling
// a request records its work as a child span of Span in its own tracer,
// scoped to the same query, so the coordinator's span tree and the sites'
// span trees stitch together by (QueryID, span ID).
type TraceContext struct {
	// QueryID scopes the request to one coordinator query execution.
	QueryID string
	// Alg is the executing strategy's name.
	Alg string
	// Span is the caller's span ID, the parent of the server-side span.
	Span uint64
	// From is the calling site (the coordinator or a peer dispatching
	// checks), keying per-site-pair byte accounting.
	From object.SiteID
}

// Request is one site-server request.
type Request struct {
	Kind string
	// Trace carries the caller's span context; the zero value means an
	// untraced request.
	Trace TraceContext
	// DeadlineMicros is the query budget remaining at the caller when the
	// request was sent, in microseconds; 0 means no deadline. The budget is
	// relative — a duration, not a wall-clock instant — so it survives clock
	// skew between machines: the server re-arms its own timer on arrival
	// (the network transit time is the caller's risk, not a skew error) and
	// aborts O/I/P work when it expires, answering errDeadline.
	DeadlineMicros int64
	// Query is the global query text for retrieve and local requests; the
	// site binds it against its own copy of the global schema.
	Query string
	// Mode selects the localized flow for local requests.
	Mode string
	// Items are the assistant checks for check requests.
	Items []federation.CheckItem
	// Batch carries the item groups of a coalesced checkbatch request: the
	// check pipelines of several concurrent queries bound for the same peer
	// travel as one RPC, one group per originating local query. Replies come
	// back group-aligned (Response.CheckBatch), so each waiting query gets
	// exactly its own verdicts even though the wire trip was shared.
	Batch [][]federation.CheckItem
	// Store is the object to insert for store requests.
	Store *object.Object
	// Bind is the mapping-table delta for bind requests (replicated-table
	// maintenance).
	Bind *BindDelta
	// Digests carries the caller's per-class digest snapshot on digest
	// requests, so one exchange compares both replicas.
	Digests map[string]antientropy.Digest
	// Repair carries one class's divergent ranges for repair requests.
	Repair *RepairRequest
}

// RepairRequest converges one class between two replicas: Buckets names
// the divergent digest buckets, Bindings ships the caller's bindings in
// those buckets. The server applies the bindings it is missing
// (idempotently — a binding already present is skipped, a conflicting one
// is refused and counted, never overwritten) and answers with its own
// bindings in the same buckets.
type RepairRequest struct {
	Class    string
	Buckets  []int
	Bindings []antientropy.Binding
}

// RepairReply is the server's half of a repair exchange.
type RepairReply struct {
	// Bindings are the server's bindings in the requested buckets, for the
	// caller to apply on its side.
	Bindings []antientropy.Binding
	// Applied counts the caller's bindings the server was missing and
	// applied; Conflicts counts the ones it refused (same GOid or local
	// object already bound differently).
	Applied   int
	Conflicts int
}

// BindDelta is one new mapping-table binding, broadcast by the mapping
// authority (the coordinator) to every site's replica after an insert.
type BindDelta struct {
	Class string
	GOid  object.GOid
	Site  object.SiteID
	LOid  object.LOid
}

// LocalReply is the reply to a local request: the site's local result plus
// the check verdicts it gathered from its peers.
type LocalReply struct {
	Result       federation.LocalResult
	CheckReplies []federation.CheckReply
	// Unavailable lists peer sites whose assistant checks could not be
	// collected (dead or unreachable peers). Their verdicts are simply
	// missing, so the affected predicates stay unknown; the coordinator
	// folds these failures into the answer's degradation report.
	Unavailable []federation.SiteFailure
}

// Response is one site-server response.
type Response struct {
	Err      string
	Retrieve federation.RetrieveReply
	Local    LocalReply
	Check    federation.CheckReply
	// CheckBatch answers a checkbatch request, aligned 1:1 with the
	// request's item groups.
	CheckBatch []federation.CheckReply
	// Spans ships the server's spans for the request's query back to the
	// caller (only on traced requests), span IDs and parent links intact, so
	// the coordinator's profile covers every participating site. A site
	// forwards the spans it imported from peers (check dispatch) the same
	// way; the importer deduplicates by span ID.
	Spans []trace.Span
	// Digests answers a digest request with the server's snapshot.
	Digests map[string]antientropy.Digest
	// Repair answers a repair request.
	Repair *RepairReply
	// Suspect lists the answering replica's suspect classes among those the
	// request touched: its digest for them disagreed with a quorum of peers
	// at the last anti-entropy round, so mappings may be stale. The
	// coordinator folds them into the answer's degradation report — the
	// same maybe semantics as a dead site, scoped to classes.
	Suspect []string
}

// wireStats counts one exchange's bytes on the wire as seen by the caller.
type wireStats struct {
	Sent     int64
	Received int64
}

// countWriter and countReader meter the gob streams.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
