package remote

import (
	"fmt"
	"sync"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
)

// Coordinator executes global queries against a cluster of site servers:
// the networked counterpart of the exec engine's global processing site.
type Coordinator struct {
	// ID names the global processing site.
	ID object.SiteID
	// Global is the integrated global schema.
	Global *schema.Global
	// Tables is the coordinator's replica of the GOid mapping tables.
	Tables *gmap.Tables
	// Sites maps component sites to their server addresses.
	Sites map[object.SiteID]string
	// Matcher, when set, makes the coordinator the mapping authority for
	// Insert: it assigns GOids to new objects and its tables back the
	// coordinator's certification. Wire Tables to Matcher.Tables().
	Matcher *isomer.Matcher

	// mu guards Tables (and the Matcher behind it) between concurrent
	// Query and Insert calls.
	mu sync.RWMutex
}

// Ping verifies every site server is reachable.
func (c *Coordinator) Ping() error {
	for site, addr := range c.Sites {
		if _, err := call(addr, Request{Kind: kindPing}); err != nil {
			return fmt.Errorf("remote: site %s unreachable: %w", site, err)
		}
	}
	return nil
}

// Query parses, binds and executes a global query under the given strategy
// across the cluster, returning the answer and the wall-clock time spent.
func (c *Coordinator) Query(text string, alg exec.Algorithm) (*federation.Answer, time.Duration, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, 0, err
	}
	b, err := query.Bind(q, c.Global)
	if err != nil {
		return nil, 0, err
	}

	start := time.Now()
	var ans *federation.Answer
	switch alg {
	case exec.CA:
		ans, err = c.runCA(text, b)
	case exec.BL:
		ans, err = c.runLocalized(text, b, ModeBL)
	case exec.PL:
		ans, err = c.runLocalized(text, b, ModePL)
	case exec.SBL:
		ans, err = c.runLocalized(text, b, ModeSBL)
	case exec.SPL:
		ans, err = c.runLocalized(text, b, ModeSPL)
	default:
		return nil, 0, fmt.Errorf("remote: unsupported algorithm %v", alg)
	}
	if err != nil {
		return nil, 0, err
	}
	return ans, time.Since(start), nil
}

// Insert stores a new object at a component site and maintains the
// replicated GOid mapping tables: the coordinator (mapping authority)
// matches the object against existing entities, binds it, and broadcasts
// the binding delta to every site replica. Distributed atomicity is out of
// scope (a failed broadcast leaves replicas stale; the paper defers
// replicated-data management to the underlying mechanism).
func (c *Coordinator) Insert(site object.SiteID, o *object.Object) (object.GOid, error) {
	if c.Matcher == nil {
		return "", fmt.Errorf("remote: coordinator has no mapping authority (Matcher)")
	}
	addr, ok := c.Sites[site]
	if !ok {
		return "", fmt.Errorf("remote: no address for site %s", site)
	}
	gc := c.Global.GlobalFor(site, o.Class)
	if gc == nil {
		return "", fmt.Errorf("remote: class %s@%s is not integrated", o.Class, site)
	}

	// 1. Store at the owning site.
	if _, err := call(addr, Request{Kind: kindStore, Store: o}); err != nil {
		return "", err
	}
	// 2. Assign the GOid (entity match by key).
	c.mu.Lock()
	goid, err := c.Matcher.Add(site, o.Class, o)
	c.mu.Unlock()
	if err != nil {
		return "", err
	}
	// 3. Broadcast the delta to every replica.
	delta := &BindDelta{Class: gc.Name, GOid: goid, Site: site, LOid: o.LOid}
	for peer, peerAddr := range c.Sites {
		if _, err := call(peerAddr, Request{Kind: kindBind, Bind: delta}); err != nil {
			return goid, fmt.Errorf("remote: replica at %s is stale: %w", peer, err)
		}
	}
	return goid, nil
}

// fanOut calls every listed site in parallel and collects responses in
// site order.
func (c *Coordinator) fanOut(sites []object.SiteID, req Request) ([]Response, error) {
	resps := make([]Response, len(sites))
	errs := make([]error, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		addr, ok := c.Sites[site]
		if !ok {
			return nil, fmt.Errorf("remote: no address for site %s", site)
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			resps[i], errs[i] = call(addr, req)
		}(i, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

func (c *Coordinator) runCA(text string, b *query.Bound) (*federation.Answer, error) {
	resps, err := c.fanOut(b.InvolvedSites(), Request{Kind: kindRetrieve, Query: text})
	if err != nil {
		return nil, err
	}
	replies := make([]federation.RetrieveReply, len(resps))
	for i, r := range resps {
		replies[i] = r.Retrieve
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	err = runReal("ca-coordinator", func(p fabric.Proc) {
		view := coord.Materialize(p, b, replies)
		ans = coord.EvaluateView(p, b, view)
	})
	return ans, err
}

func (c *Coordinator) runLocalized(text string, b *query.Bound, mode string) (*federation.Answer, error) {
	resps, err := c.fanOut(b.RootSites(), Request{Kind: kindLocal, Query: text, Mode: mode})
	if err != nil {
		return nil, err
	}
	var (
		results []federation.LocalResult
		replies []federation.CheckReply
	)
	for _, r := range resps {
		results = append(results, r.Local.Result)
		replies = append(replies, r.Local.CheckReplies...)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	err = runReal("certify", func(p fabric.Proc) {
		ans = coord.Certify(p, b, results, replies)
	})
	return ans, err
}
