package remote

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/trace"
)

// Coordinator executes global queries against a cluster of site servers:
// the networked counterpart of the exec engine's global processing site.
type Coordinator struct {
	// ID names the global processing site.
	ID object.SiteID
	// Global is the integrated global schema.
	Global *schema.Global
	// Tables is the coordinator's replica of the GOid mapping tables.
	Tables *gmap.Tables
	// Sites maps component sites to their server addresses.
	Sites map[object.SiteID]string
	// Matcher, when set, makes the coordinator the mapping authority for
	// Insert: it assigns GOids to new objects and its tables back the
	// coordinator's certification. Wire Tables to Matcher.Tables().
	Matcher *isomer.Matcher
	// Tracer, when non-nil, records each query as a span tree whose per-site
	// RPC spans carry the IDs propagated to the servers.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives query counters, latency histograms,
	// and per-site-pair byte accounting as seen from the coordinator.
	Metrics *metrics.Registry
	// Recorder, when non-nil, receives a trace.Profile per executed query —
	// the coordinator's flight recorder. Requires Tracer; the profile's
	// spans cover every site that answered (servers ship their spans back
	// with traced responses).
	Recorder *obs.Recorder
	// Selector, when non-nil, resolves exec.Adaptive to a concrete strategy
	// per query and is fed every finished query's profile — the calibration
	// loop, closed over the wire: the servers stamp their measured work onto
	// the spans they ship back, and the selector's health source is typically
	// this coordinator's BreakerStates.
	Selector exec.Selector
	// Log, when non-nil, receives structured query logs.
	Log *slog.Logger
	// Call is the networking policy for site calls: timeouts, retries,
	// pooling, circuit breakers. Zero fields take DefaultCallConfig values.
	Call CallConfig
	// MaxConcurrent bounds the queries executing at once (admission
	// control); calls beyond the bound wait for a slot. Zero or negative
	// means unbounded. Read at the first Query; set before serving.
	MaxConcurrent int
	// Deadline, when positive, caps every query's end-to-end time.
	// QueryContext applies it only when the caller's context carries no
	// deadline of its own. An over-deadline query returns its sound partial
	// answer with Answer.Outcome = OutcomeDeadline.
	Deadline time.Duration
	// DeltaLog, when set, makes Insert's bind deltas durable: every
	// assigned binding is appended to the log before broadcast, and a
	// replica whose pending-delta queue overflows is rebuilt by replaying
	// the gap from the log on the next successful Ping instead of losing
	// the dropped deltas. Typically a *wal.Engine opened with OpenLog.
	DeltaLog DeltaLog
	// AntiEntropy configures the coordinator's replica-repair loop: the
	// cadence of StartAntiEntropy's background rounds and the per-exchange
	// timeout of RunAntiEntropyRound. The zero value disables the loop;
	// rounds can still be run on demand.
	AntiEntropy AntiEntropyConfig

	// mu guards Tables (and the Matcher behind it) between concurrent
	// Query and Insert calls.
	mu   sync.RWMutex
	qseq atomic.Uint64

	// clMu guards the lazily-built pooled site-call client. Not a
	// sync.Once: Close must be idempotent and allocation-free when no
	// client was ever built, and a post-Close call must build a FRESH
	// client rather than reuse the closed one.
	clMu sync.Mutex
	cl   *client

	gateOnce sync.Once
	gate     chan struct{}

	// resyncMu guards the pending-delta queues and rebuild marks: bind
	// deltas a replica missed (failed broadcast) are re-sent on the next
	// successful Ping; a peer whose queue overflowed is marked for a
	// log rebuild instead.
	resyncMu    sync.Mutex
	resync      map[object.SiteID][]pendingDelta
	rebuildFrom map[object.SiteID]uint64

	// trMu guards the lazily-built divergence tracker (the tracker itself
	// is internally synchronized). Lazy for the same reason as the client:
	// the zero-value-plus-fields construction pattern, with Tables often
	// populated after the struct literal.
	trMu sync.Mutex
	tr   *antientropy.Tracker

	// peerOpMu guards peerOps, the per-peer serialization locks. Resync
	// replay (Ping) and anti-entropy repair both stream bindings to a
	// peer; interleaving them against the SAME peer could re-deliver a
	// delta around a repair that already converged it and double-charge
	// repair accounting, so each peer's maintenance traffic runs one
	// stream at a time. Different peers proceed in parallel.
	peerOpMu sync.Mutex
	peerOps  map[object.SiteID]*sync.Mutex
}

// DeltaLog is the durable bind-delta log behind the coordinator's replica
// resync: AppendBind persists one binding and returns its log sequence
// number; ReplayBinds streams every persisted binding with sequence >= from
// in log order. *wal.Engine implements it.
type DeltaLog interface {
	AppendBind(class string, goid object.GOid, site object.SiteID, loid object.LOid) (uint64, error)
	ReplayBinds(from uint64, fn func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error) error
}

// pendingDelta is one queued resync entry: the delta plus its DeltaLog
// sequence (0 when no log is configured).
type pendingDelta struct {
	delta *BindDelta
	seq   uint64
}

// maxPendingDeltas bounds each peer's pending-delta resync queue; beyond
// it the peer is marked needs-rebuild. With a DeltaLog the whole gap is
// replayed from the log on the next Ping; without one the oldest deltas
// are dropped (replica_resync_dropped_total) and the mark stays until an
// operator re-seeds the replica.
const maxPendingDeltas = 256

// client lazily builds the coordinator's pooled site-call client so the
// zero-value-plus-fields construction pattern keeps working. After Close
// it builds a fresh client.
func (c *Coordinator) client() *client {
	c.clMu.Lock()
	defer c.clMu.Unlock()
	if c.cl == nil {
		c.cl = newClient(c.ID, c.Call, c.Metrics)
	}
	return c.cl
}

// Close releases the coordinator's pooled connections. It is idempotent
// and allocation-free when no client was ever built, and the coordinator
// remains usable afterwards: the next call builds a fresh client.
func (c *Coordinator) Close() {
	c.clMu.Lock()
	cl := c.cl
	c.cl = nil
	c.clMu.Unlock()
	if cl != nil {
		cl.close()
	}
}

// BreakerStates reports each site's circuit-breaker state as seen from the
// coordinator, for the health surface.
func (c *Coordinator) BreakerStates() map[object.SiteID]string {
	return c.client().BreakerStates()
}

// tracker lazily builds the coordinator's divergence tracker, seeded from
// the current mapping tables. It takes c.mu.RLock on first use, so callers
// must NOT hold c.mu — fetch the tracker before locking.
func (c *Coordinator) tracker() *antientropy.Tracker {
	c.trMu.Lock()
	defer c.trMu.Unlock()
	if c.tr == nil {
		c.tr = antientropy.NewTracker()
		c.mu.RLock()
		c.tr.Seed(c.Tables)
		c.mu.RUnlock()
	}
	return c.tr
}

// Tracker exposes the coordinator's divergence tracker (health surfaces,
// tests). Its Health() map, prefixed "antientropy", is the /healthz
// condition hetops reads the repair column from.
func (c *Coordinator) Tracker() *antientropy.Tracker { return c.tracker() }

// peerLock serializes maintenance streams (resync replay, anti-entropy
// repair) against one peer; different peers proceed in parallel. Returns
// the unlock.
func (c *Coordinator) peerLock(peer object.SiteID) func() {
	c.peerOpMu.Lock()
	if c.peerOps == nil {
		c.peerOps = make(map[object.SiteID]*sync.Mutex)
	}
	m := c.peerOps[peer]
	if m == nil {
		m = new(sync.Mutex)
		c.peerOps[peer] = m
	}
	c.peerOpMu.Unlock()
	m.Lock()
	return m.Unlock
}

// RunAntiEntropyRound runs one digest-exchange round against every site and
// returns the number of divergent classes found. The coordinator is the
// mapping authority, so its replica usually leads — but after a restart
// from a stale log, repair pulls the bindings the sites kept and the
// coordinator lost. Pulled bindings are appended to the DeltaLog (when
// configured) so future rebuild replays stay complete; they do NOT update
// the Matcher's entity-key index, so a pulled entity matches by GOid but
// not yet by key until re-seeded (documented limitation).
func (c *Coordinator) RunAntiEntropyRound(ctx context.Context) int {
	tr := c.tracker()
	peers := make(map[object.SiteID]string, len(c.Sites))
	for site, addr := range c.Sites {
		peers[site] = addr
	}
	return runAntiEntropyRound(ctx, aeReplica{
		self:     c.ID,
		client:   c.client(),
		tracker:  tr,
		reg:      c.Metrics,
		timeout:  c.AntiEntropy.timeout(),
		lockPeer: c.peerLock,
		bindings: func(class string, buckets []int) []antientropy.Binding {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return antientropy.BucketBindings(c.Tables.Table(class), buckets)
		},
		apply: func(class string, bs []antientropy.Binding) (int, int) {
			c.mu.Lock()
			defer c.mu.Unlock()
			t := c.Tables.Table(class)
			var applied, conflicts int
			for _, b := range bs {
				if t.Bound(b.GOid, b.Site, b.LOid) {
					continue
				}
				if g, ok := t.GOidOf(b.Site, b.LOid); ok && g != b.GOid {
					conflicts++
					tr.NoteConflict()
					continue
				}
				if l, ok := t.LOidAt(b.GOid, b.Site); ok && l != b.LOid {
					conflicts++
					tr.NoteConflict()
					continue
				}
				if c.DeltaLog != nil {
					if _, err := c.DeltaLog.AppendBind(class, b.GOid, b.Site, b.LOid); err != nil {
						// An unloggable binding is not applied: the in-memory
						// table must never get ahead of the durable log, or a
						// rebuild replay would silently lose the binding.
						continue
					}
				}
				if err := t.Bind(b.GOid, b.Site, b.LOid); err != nil {
					conflicts++
					tr.NoteConflict()
					continue
				}
				tr.Observe(class, b.GOid, b.Site, b.LOid)
				applied++
			}
			return applied, conflicts
		},
	}, peers)
}

// StartAntiEntropy launches the background repair loop on the configured
// cadence (AntiEntropy.Interval; zero or negative is a no-op) and returns
// its stop function. Stop before Close.
func (c *Coordinator) StartAntiEntropy() (stop func()) {
	if c.AntiEntropy.Interval <= 0 {
		return func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTimer(c.AntiEntropy.jittered())
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.RunAntiEntropyRound(ctx)
				t.Reset(c.AntiEntropy.jittered())
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// DivergenceStates reports the coordinator's suspect classes for the
// health surface: class → suspicion reason. Converged classes are absent.
func (c *Coordinator) DivergenceStates() map[string]string {
	return c.tracker().SuspectReasons()
}

// suspectFailures folds replica divergence into an answer's degradation
// report: every answering site that flagged suspect classes among the
// query's, plus the coordinator's own suspect marks. These failures are
// advisory (the sites DID answer) — they mark the answer degraded but are
// never treated as dead sites for certification.
func (c *Coordinator) suspectFailures(b *query.Bound, resps []siteResponse) []federation.SiteFailure {
	var out []federation.SiteFailure
	for _, r := range resps {
		if len(r.Resp.Suspect) > 0 {
			out = append(out, federation.DivergenceFailure(r.Site, r.Resp.Suspect))
		}
	}
	if sus := c.tracker().SuspectOf(b.Classes()); len(sus) > 0 {
		out = append(out, federation.DivergenceFailure(c.ID, sus))
	}
	return out
}

// admit blocks until the query is admitted under MaxConcurrent, the context
// expires, or the caller goes away; it returns the release function plus
// the microseconds this admission waited (0 when admitted immediately).
// Admission happens after parse/bind (cheap, local) and before any network
// work. A query whose context dies pre-slot is shed (queries_shed_total)
// with the matching typed error — overload never queues doomed work.
func (c *Coordinator) admit(ctx context.Context, alg string) (func(), int64, error) {
	c.gateOnce.Do(func() {
		if c.MaxConcurrent > 0 {
			c.gate = make(chan struct{}, c.MaxConcurrent)
		}
	})
	if c.gate == nil {
		return func() {}, 0, nil
	}
	self := string(c.ID)
	shed := func(cause error) error {
		c.Metrics.Counter("queries_shed_total", metrics.Labels{Site: self}).Inc()
		if errors.Is(cause, context.DeadlineExceeded) {
			return exec.ErrShed
		}
		return exec.ErrCanceled
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, shed(err)
	}
	var waited int64
	select {
	case c.gate <- struct{}{}:
	default:
		c.Metrics.Counter("queries_queued_total", metrics.Labels{Site: self}).Inc()
		start := time.Now()
		select {
		case c.gate <- struct{}{}:
		case <-ctx.Done():
			waited = time.Since(start).Microseconds()
			c.Metrics.Histogram("admission_wait_us", metrics.Labels{Site: self, Alg: alg}).
				Observe(float64(waited))
			return nil, waited, shed(ctx.Err())
		}
		waited = time.Since(start).Microseconds()
		c.Metrics.Histogram("admission_wait_us", metrics.Labels{Site: self, Alg: alg}).
			Observe(float64(waited))
	}
	c.Metrics.Gauge("queries_inflight", metrics.Labels{Site: self}).Add(1)
	return func() {
		c.Metrics.Gauge("queries_inflight", metrics.Labels{Site: self}).Add(-1)
		<-c.gate
	}, waited, nil
}

// qctx scopes one networked query execution.
type qctx struct {
	qid  string
	alg  string
	root trace.SpanID
}

// qidTag distinguishes this process's query IDs. Query IDs scope spans at
// the *servers*, which outlive coordinator processes: if every coordinator
// run minted "rq1", a site's /debug/trace/last would conflate the last
// queries of different runs into one tree.
var qidTag = rand.Uint32() & 0xffffff

// span opens a query-scoped span at the coordinator site.
func (c *Coordinator) span(q *qctx, parent trace.SpanID, name, phases string) trace.Handle {
	return c.Tracer.StartSpan(parent, c.ID, name).WithQuery(q.qid, q.alg).WithPhases(phases)
}

// pingTimeout bounds one ping exchange: a liveness probe needs a tight
// deadline, not the query-sized call timeout.
const pingTimeout = 2 * time.Second

// Ping probes every site server in parallel under a bounded deadline and
// reports ALL unreachable sites in one error (site order), so an operator
// sees the whole outage instead of one site per invocation.
func (c *Coordinator) Ping() error {
	sites := make([]object.SiteID, 0, len(c.Sites))
	for site := range c.Sites {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	cl := c.client()
	errs := make([]error, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		wg.Add(1)
		go func(i int, site object.SiteID) {
			defer wg.Done()
			req := Request{Kind: kindPing, Trace: TraceContext{From: c.ID}}
			if _, _, err := cl.callTimeout(context.Background(), site, c.Sites[site], req, pingTimeout); err != nil {
				errs[i] = fmt.Errorf("remote: site %s unreachable: %w", site, err)
				return
			}
			// The site answered: if its replica missed bind deltas while it
			// was down, bring it back in sync now.
			c.replayResync(site)
		}(i, site)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Query parses, binds and executes a global query under the given strategy
// across the cluster, returning the answer and the wall-clock time spent.
// Equivalent to QueryContext with context.Background().
func (c *Coordinator) Query(text string, alg exec.Algorithm) (*federation.Answer, time.Duration, error) {
	return c.QueryContext(context.Background(), text, alg)
}

// QueryContext is Query under a caller context: the deadline travels to
// every site as a remaining-budget stamp on each request, cancellation
// unwinds the fan-out (in-flight exchanges are cut, queued batch items
// withdrawn, the admission slot released), and a query whose context dies
// while queued for admission is shed with a typed error. An admitted query
// that is interrupted mid-flight does NOT fail: it returns its sound
// partial answer with Answer.Outcome set (canceled/deadline) and the
// skipped sites listed as unavailable. When Deadline is set and ctx has no
// deadline, the coordinator's default applies.
func (c *Coordinator) QueryContext(ctx context.Context, text string, alg exec.Algorithm) (*federation.Answer, time.Duration, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, 0, err
	}
	b, err := query.Bind(q, c.Global)
	if err != nil {
		return nil, 0, err
	}
	if alg == exec.Adaptive {
		if c.Selector == nil {
			return nil, 0, fmt.Errorf("remote: adaptive requires a selector (Coordinator.Selector)")
		}
		alg = c.Selector.Select(b)
		c.Metrics.Counter("adaptive_choice_total",
			metrics.Labels{Site: string(c.ID), Alg: alg.String()}).Inc()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Deadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.Deadline)
			defer cancel()
		}
	}
	release, waitMicros, admitErr := c.admit(ctx, alg.String())
	if admitErr != nil {
		return nil, 0, admitErr
	}
	defer release()

	start := time.Now()
	qc := &qctx{qid: fmt.Sprintf("rq%d-%06x", c.qseq.Add(1), qidTag), alg: alg.String()}
	root := c.span(qc, 0, alg.String(), "")
	qc.root = root.ID()
	var ans *federation.Answer
	switch alg {
	case exec.CA:
		ans, err = c.runCA(ctx, qc, text, b)
	case exec.BL:
		ans, err = c.runLocalized(ctx, qc, text, b, ModeBL)
	case exec.PL:
		ans, err = c.runLocalized(ctx, qc, text, b, ModePL)
	case exec.SBL:
		ans, err = c.runLocalized(ctx, qc, text, b, ModeSBL)
	case exec.SPL:
		ans, err = c.runLocalized(ctx, qc, text, b, ModeSPL)
	default:
		root.End()
		return nil, 0, fmt.Errorf("remote: unsupported algorithm %v", alg)
	}
	if ans != nil {
		switch ctxErr := ctx.Err(); {
		case ctxErr == nil:
		case errors.Is(ctxErr, context.DeadlineExceeded):
			ans.Outcome = federation.OutcomeDeadline
		default:
			ans.Outcome = federation.OutcomeCanceled
		}
		root.Add("certain", int64(len(ans.Certain))).Add("maybe", int64(len(ans.Maybe)))
		if ans.Degraded {
			root.Add("degraded", 1)
			for _, f := range ans.Unavailable {
				root.Detailf("unavailable %s", f)
			}
		}
		if ans.Interrupted() {
			root.Detailf("interrupted: %s", ans.Outcome)
		}
	}
	root.End()
	d := time.Since(start)
	c.observeQuery(qc, ans, d, err)
	profErr := err
	if profErr == nil {
		profErr = ctx.Err()
	}
	c.profile(qc, ans, d, waitMicros, profErr)
	if err != nil {
		return nil, 0, err
	}
	return ans, d, nil
}

// profile assembles the query's trace.Profile — coordinator spans plus
// every span the answering sites shipped back — and hands it to the flight
// recorder. Failed queries record an error profile; the recorder always
// retains those.
func (c *Coordinator) profile(q *qctx, ans *federation.Answer, d time.Duration, waitMicros int64, err error) {
	if (c.Recorder == nil && c.Selector == nil) || c.Tracer == nil {
		return
	}
	p := trace.BuildProfile(q.qid, q.alg, c.Tracer.QuerySpans(q.qid))
	if p == nil {
		return
	}
	p.WallMicros = float64(d.Microseconds())
	var certain, maybe int
	var unavailable []string
	if ans != nil {
		certain, maybe = len(ans.Certain), len(ans.Maybe)
		for _, f := range ans.Unavailable {
			unavailable = append(unavailable, string(f.Site))
		}
	}
	p.SetOutcome(certain, maybe, unavailable, err)
	p.AddCounter("admission_wait_us", waitMicros)
	if c.Recorder != nil {
		c.Recorder.Record(p)
	}
	if c.Selector != nil {
		c.Selector.Observe(p)
	}
}

// observeQuery feeds the query's metrics and structured log entry.
func (c *Coordinator) observeQuery(q *qctx, ans *federation.Answer, d time.Duration, err error) {
	us := float64(d.Nanoseconds()) / 1e3
	self := string(c.ID)
	c.Metrics.Counter("queries_total", metrics.Labels{Site: self, Alg: q.alg}).Inc()
	c.Metrics.Histogram("query_latency_us", metrics.Labels{Site: self, Alg: q.alg}).
		ObserveWithExemplar(us, q.qid)
	if ans != nil {
		algOnly := metrics.Labels{Alg: q.alg}
		c.Metrics.Counter("results_certain_total", algOnly).Add(int64(len(ans.Certain)))
		c.Metrics.Counter("results_maybe_total", algOnly).Add(int64(len(ans.Maybe)))
		c.Metrics.Counter("maybe_certified_total", algOnly).Add(int64(ans.Stats.Certified))
		c.Metrics.Counter("maybe_eliminated_total", algOnly).Add(int64(ans.Stats.Eliminated))
		if ans.Degraded {
			c.Metrics.Counter("degraded_queries_total",
				metrics.Labels{Site: self, Alg: q.alg}).Inc()
		}
		switch ans.Outcome {
		case federation.OutcomeCanceled:
			c.Metrics.Counter("queries_canceled_total", metrics.Labels{Site: self, Alg: q.alg}).Inc()
		case federation.OutcomeDeadline:
			c.Metrics.Counter("deadline_exceeded_total", metrics.Labels{Site: self, Alg: q.alg}).Inc()
		}
	}
	if c.Log != nil {
		attrs := []slog.Attr{
			slog.String("query", q.qid),
			slog.String("alg", q.alg),
			slog.Float64("us", us),
		}
		if ans != nil {
			attrs = append(attrs,
				slog.Int("certain", len(ans.Certain)),
				slog.Int("maybe", len(ans.Maybe)),
				slog.Int("certified", ans.Stats.Certified),
				slog.Int("eliminated", ans.Stats.Eliminated))
			if ans.Degraded {
				downs := make([]string, len(ans.Unavailable))
				for i, f := range ans.Unavailable {
					downs[i] = f.String()
				}
				attrs = append(attrs, slog.Any("unavailable", downs))
			}
		}
		if err != nil {
			attrs = append(attrs, slog.String("err", err.Error()))
			c.Log.LogAttrs(context.Background(), slog.LevelError, "query failed", attrs...)
			return
		}
		c.Log.LogAttrs(context.Background(), slog.LevelInfo, "query done", attrs...)
	}
}

// Insert stores a new object at a component site and maintains the
// replicated GOid mapping tables: the coordinator (mapping authority)
// matches the object against existing entities, binds it, and broadcasts
// the binding delta to every site replica. Distributed atomicity is out of
// scope (a failed broadcast leaves replicas stale; the paper defers
// replicated-data management to the underlying mechanism).
func (c *Coordinator) Insert(site object.SiteID, o *object.Object) (object.GOid, error) {
	if c.Matcher == nil {
		return "", fmt.Errorf("remote: coordinator has no mapping authority (Matcher)")
	}
	addr, ok := c.Sites[site]
	if !ok {
		return "", fmt.Errorf("remote: no address for site %s", site)
	}
	gc := c.Global.GlobalFor(site, o.Class)
	if gc == nil {
		return "", fmt.Errorf("remote: class %s@%s is not integrated", o.Class, site)
	}

	// 1. Store at the owning site.
	cl := c.client()
	tr := c.tracker() // before c.mu: the lazy seed takes c.mu.RLock
	if _, _, err := cl.call(site, addr, Request{Kind: kindStore, Store: o, Trace: TraceContext{From: c.ID}}); err != nil {
		return "", err
	}
	// 2. Assign the GOid (entity match by key) and persist the binding.
	// The log append happens under the same lock as the table mutation so
	// a concurrent append's snapshot never reads a half-updated table.
	var seq uint64
	c.mu.Lock()
	goid, err := c.Matcher.Add(site, o.Class, o)
	if err == nil && c.DeltaLog != nil {
		seq, err = c.DeltaLog.AppendBind(gc.Name, goid, site, o.LOid)
		if err != nil {
			err = fmt.Errorf("remote: delta log: %w", err)
		}
	}
	if err == nil {
		tr.Observe(gc.Name, goid, site, o.LOid)
	}
	c.mu.Unlock()
	if err != nil {
		return "", err
	}
	// 3. Broadcast the delta to every replica. Every site is attempted even
	// after a failure — stopping at the first stale replica would leave the
	// remaining healthy replicas stale too. The aggregate error names every
	// replica that missed the delta.
	delta := &BindDelta{Class: gc.Name, GOid: goid, Site: site, LOid: o.LOid}
	peers := make([]object.SiteID, 0, len(c.Sites))
	for peer := range c.Sites {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer object.SiteID) {
			defer wg.Done()
			if _, _, err := cl.call(peer, c.Sites[peer], Request{Kind: kindBind, Bind: delta, Trace: TraceContext{From: c.ID}}); err != nil {
				c.Metrics.Counter("replica_stale_total",
					metrics.Labels{Site: string(c.ID), Peer: string(peer)}).Inc()
				c.queueResync(peer, delta, seq)
				errs[i] = fmt.Errorf("remote: replica at %s is stale: %w", peer, err)
			}
		}(i, peer)
	}
	wg.Wait()
	return goid, errors.Join(errs...)
}

// queueResync remembers a bind delta a replica missed (its broadcast
// failed) so the next successful Ping can replay it. Each peer's queue is
// bounded at maxPendingDeltas; on overflow the peer is marked
// needs-rebuild (surfaced on /healthz via ResyncStates). With a DeltaLog
// the queue is released — the durable log holds everything from the
// oldest queued sequence on, and the next Ping replays that gap; without
// one the oldest deltas are dropped and counted, and the mark is sticky.
func (c *Coordinator) queueResync(peer object.SiteID, delta *BindDelta, seq uint64) {
	c.resyncMu.Lock()
	defer c.resyncMu.Unlock()
	if c.resync == nil {
		c.resync = make(map[object.SiteID][]pendingDelta)
	}
	q := append(c.resync[peer], pendingDelta{delta: delta, seq: seq})
	if drop := len(q) - maxPendingDeltas; drop > 0 {
		if c.DeltaLog != nil {
			c.markRebuildLocked(peer, q[0].seq)
			q = nil
		} else {
			c.markRebuildLocked(peer, 0)
			q = append([]pendingDelta(nil), q[drop:]...)
			c.Metrics.Counter("replica_resync_dropped_total",
				metrics.Labels{Site: string(c.ID), Peer: string(peer)}).Add(int64(drop))
		}
	}
	c.resync[peer] = q
}

// markRebuildLocked flags a peer as needing a rebuild from the given log
// sequence (keeping the earliest when marked repeatedly). Caller holds
// resyncMu.
func (c *Coordinator) markRebuildLocked(peer object.SiteID, seq uint64) {
	if c.rebuildFrom == nil {
		c.rebuildFrom = make(map[object.SiteID]uint64)
	}
	if cur, ok := c.rebuildFrom[peer]; !ok || seq < cur {
		c.rebuildFrom[peer] = seq
	}
	c.Metrics.Gauge("replica_needs_rebuild",
		metrics.Labels{Site: string(c.ID), Peer: string(peer)}).Set(1)
}

// replayResync brings a reachable peer's replica back in sync. A peer
// marked needs-rebuild is replayed from the durable log first (the whole
// gap since the oldest lost delta); then the in-memory pending queue is
// re-sent in order. Replicas apply exact-duplicate binds idempotently, so
// overlap between log replay and queued deltas is harmless. A delta that
// fails again puts itself and everything after it back at the front of the
// queue (preserving order against deltas queued meanwhile) for the next
// Ping to retry; a failed rebuild keeps the rebuild mark.
//
// The whole replay holds the peer's maintenance lock, so it never
// interleaves with an anti-entropy repair stream to the same peer.
func (c *Coordinator) replayResync(peer object.SiteID) {
	defer c.peerLock(peer)()
	c.resyncMu.Lock()
	pending := c.resync[peer]
	delete(c.resync, peer)
	rebuildSeq, rebuild := c.rebuildFrom[peer]
	if rebuild && c.DeltaLog != nil {
		delete(c.rebuildFrom, peer)
	}
	c.resyncMu.Unlock()
	if len(pending) == 0 && !rebuild {
		return
	}
	addr, ok := c.Sites[peer]
	if !ok {
		return
	}
	cl := c.client()
	labels := metrics.Labels{Site: string(c.ID), Peer: string(peer)}

	if rebuild && c.DeltaLog != nil {
		err := c.DeltaLog.ReplayBinds(rebuildSeq, func(class string, goid object.GOid, site object.SiteID, loid object.LOid) error {
			d := &BindDelta{Class: class, GOid: goid, Site: site, LOid: loid}
			if _, _, err := cl.call(peer, addr, Request{Kind: kindBind, Bind: d, Trace: TraceContext{From: c.ID}}); err != nil {
				return err
			}
			c.Metrics.Counter("replica_resync_total", labels).Inc()
			return nil
		})
		if err != nil {
			// Put everything back for the next Ping: the rebuild mark and
			// any deltas queued meanwhile.
			c.resyncMu.Lock()
			c.markRebuildLocked(peer, rebuildSeq)
			c.resync[peer] = append(pending, c.resync[peer]...)
			c.resyncMu.Unlock()
			return
		}
		c.Metrics.Counter("replica_rebuild_total", labels).Inc()
		c.Metrics.Gauge("replica_needs_rebuild", labels).Set(0)
		// The log covered every sequence from rebuildSeq through its tail,
		// which includes all queued deltas (their sequences were assigned
		// before they could be queued); nothing left to re-send.
		pending = nil
	}

	for i, pd := range pending {
		if _, _, err := cl.call(peer, addr, Request{Kind: kindBind, Bind: pd.delta, Trace: TraceContext{From: c.ID}}); err != nil {
			c.resyncMu.Lock()
			if c.resync == nil {
				c.resync = make(map[object.SiteID][]pendingDelta)
			}
			q := append(append([]pendingDelta(nil), pending[i:]...), c.resync[peer]...)
			if drop := len(q) - maxPendingDeltas; drop > 0 {
				if c.DeltaLog != nil {
					c.markRebuildLocked(peer, q[0].seq)
					q = nil
				} else {
					c.markRebuildLocked(peer, 0)
					q = append([]pendingDelta(nil), q[drop:]...)
					c.Metrics.Counter("replica_resync_dropped_total", labels).Add(int64(drop))
				}
			}
			c.resync[peer] = q
			c.resyncMu.Unlock()
			return
		}
		c.Metrics.Counter("replica_resync_total", labels).Inc()
	}
}

// ResyncStates reports each out-of-sync replica's condition for the health
// surface: "needs-rebuild" for peers whose pending-delta queue overflowed,
// "pending(N)" for peers with N deltas awaiting replay. In-sync peers are
// absent.
func (c *Coordinator) ResyncStates() map[object.SiteID]string {
	c.resyncMu.Lock()
	defer c.resyncMu.Unlock()
	out := make(map[object.SiteID]string)
	for peer, q := range c.resync {
		if len(q) > 0 {
			out[peer] = fmt.Sprintf("pending(%d)", len(q))
		}
	}
	for peer := range c.rebuildFrom {
		out[peer] = "needs-rebuild"
	}
	return out
}

// siteResponse is one site's outcome in a fan-out: its response, or the
// transport failure that kept it from answering.
type siteResponse struct {
	Site object.SiteID
	Resp Response
}

// fanOut calls every listed site in parallel and collects per-site
// outcomes: the responses of the sites that answered (site order) and the
// failures of the sites that did not. Each call runs under its own child
// span of the query root, whose ID the server adopts as its parent; wire
// bytes are accounted per site pair in both directions as seen from the
// coordinator.
//
// Transport failures (dead sites, open breakers) become SiteFailures — the
// query degrades; an error a site answered (bad query) is deterministic and
// fails the fan-out. A site absent from the address map entirely (killed
// and unwired) degrades exactly like one that stopped answering: its
// contribution stays unknown, never an error.
func (c *Coordinator) fanOut(ctx context.Context, q *qctx, phases string, sites []object.SiteID, req Request) ([]siteResponse, []federation.SiteFailure, error) {
	cl := c.client()
	resps := make([]Response, len(sites))
	errs := make([]error, len(sites))
	addrs := make([]string, len(sites))
	for i, site := range sites {
		if addr, ok := c.Sites[site]; ok {
			addrs[i] = addr
		} else {
			errs[i] = &SiteError{Site: site, Err: errPeerNotWired}
		}
	}
	var wg sync.WaitGroup
	for i, site := range sites {
		if errs[i] != nil {
			continue
		}
		wg.Add(1)
		go func(i int, site object.SiteID, addr string) {
			defer wg.Done()
			sp := c.span(q, q.root, "rpc:"+req.Kind, phases)
			req := req
			req.Trace = TraceContext{QueryID: q.qid, Alg: q.alg, Span: uint64(sp.ID()), From: c.ID}
			var w wireStats
			resps[i], w, errs[i] = cl.callCtx(ctx, site, addr, req)
			sp.Add("sent_bytes", w.Sent).Add("recv_bytes", w.Received).
				Detailf("site %s", site)
			if errs[i] != nil {
				sp.Detailf("failed: %v", errs[i])
			} else {
				// Stitch the site's spans (and any peer check spans it
				// forwarded) into the coordinator's query tree.
				c.Tracer.Import(resps[i].Spans)
			}
			sp.End()
			c.Metrics.Counter("net_bytes_total",
				metrics.Labels{Site: string(c.ID), Peer: string(site), Alg: q.alg}).Add(w.Sent)
			c.Metrics.Counter("net_bytes_total",
				metrics.Labels{Site: string(site), Peer: string(c.ID), Alg: q.alg}).Add(w.Received)
		}(i, site, addrs[i])
	}
	wg.Wait()

	var (
		ok    []siteResponse
		dead  []federation.SiteFailure
		fatal error
	)
	for i, err := range errs {
		switch {
		case err == nil:
			ok = append(ok, siteResponse{Site: sites[i], Resp: resps[i]})
		case IsInterrupted(err):
			// The budget died (here or at the site) or the caller left: what
			// this site would have contributed stays unknown — degrade, but
			// leave the site's health record (breaker, unavailable counter)
			// untouched.
			dead = append(dead, federation.SiteFailure{Site: sites[i], Reason: err.Error()})
		case IsSiteUnavailable(err):
			c.Metrics.Counter("site_unavailable_total",
				metrics.Labels{Site: string(c.ID), Peer: string(sites[i]), Alg: q.alg}).Inc()
			dead = append(dead, federation.SiteFailure{Site: sites[i], Reason: err.Error()})
		case fatal == nil:
			fatal = err
		}
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	return ok, dead, nil
}

// deadMap folds site failures into a membership map for certification.
func deadMap(failures []federation.SiteFailure) map[object.SiteID]bool {
	if len(failures) == 0 {
		return nil
	}
	m := make(map[object.SiteID]bool, len(failures))
	for _, f := range failures {
		m[f.Site] = true
	}
	return m
}

func (c *Coordinator) runCA(ctx context.Context, q *qctx, text string, b *query.Bound) (*federation.Answer, error) {
	resps, failures, err := c.fanOut(ctx, q, "O", b.InvolvedSites(), Request{Kind: kindRetrieve, Query: text})
	if err != nil {
		return nil, err
	}
	replies := make([]federation.RetrieveReply, 0, len(resps))
	for _, r := range resps {
		replies = append(replies, r.Resp.Retrieve)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	_, err = runReal(ctx, "ca-coordinator", func(p fabric.Proc) {
		g2 := c.span(q, q.root, "CA_G2", "I")
		view := coord.Materialize(p, b, replies)
		g2.Detailf("materialized %d objects", view.Len()).End()
		g3 := c.span(q, q.root, "CA_G3", "P")
		ans = coord.EvaluateView(p, b, view)
		// A dead site's attributes are simply absent from the view, so
		// affected predicates already evaluated to unknown; entities whose
		// every queried root copy was at a dead site never materialized and
		// come back as all-unknown maybe rows.
		if dead := deadMap(failures); dead != nil {
			ans.AddMaybe(coord.DegradedRootRows(p, b, dead, view.Has)...)
		}
		g3.End()
	})
	if ans != nil {
		// Suspect replicas degrade the answer too, but never enter the
		// dead map above: their sites answered, their mappings are merely
		// unconfirmed.
		ans.MarkDegraded(failures)
		ans.MarkDegraded(c.suspectFailures(b, resps))
	}
	return ans, err
}

func (c *Coordinator) runLocalized(ctx context.Context, q *qctx, text string, b *query.Bound, mode string) (*federation.Answer, error) {
	resps, failures, err := c.fanOut(ctx, q, reqPhases(Request{Kind: kindLocal, Mode: mode}), b.RootSites(),
		Request{Kind: kindLocal, Query: text, Mode: mode})
	if err != nil {
		return nil, err
	}
	var (
		results []federation.LocalResult
		replies []federation.CheckReply
		// allFailures also collects peer failures the live sites hit while
		// dispatching checks. Only the coordinator-observed failures feed
		// the certification's dead map: a root site that answered its local
		// query eliminated by silence legitimately, even if some peer could
		// not reach it; a peer failure merely left check verdicts missing.
		allFailures = append([]federation.SiteFailure(nil), failures...)
	)
	for _, r := range resps {
		results = append(results, r.Resp.Local.Result)
		replies = append(replies, r.Resp.Local.CheckReplies...)
		allFailures = append(allFailures, r.Resp.Local.Unavailable...)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	_, err = runReal(ctx, "certify", func(p fabric.Proc) {
		g2 := c.span(q, q.root, "certify", "I")
		ans = coord.CertifyDegraded(p, b, results, replies, deadMap(failures))
		g2.End()
	})
	if ans != nil {
		ans.MarkDegraded(allFailures)
		ans.MarkDegraded(c.suspectFailures(b, resps))
	}
	return ans, err
}
