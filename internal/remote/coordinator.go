package remote

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/trace"
)

// Coordinator executes global queries against a cluster of site servers:
// the networked counterpart of the exec engine's global processing site.
type Coordinator struct {
	// ID names the global processing site.
	ID object.SiteID
	// Global is the integrated global schema.
	Global *schema.Global
	// Tables is the coordinator's replica of the GOid mapping tables.
	Tables *gmap.Tables
	// Sites maps component sites to their server addresses.
	Sites map[object.SiteID]string
	// Matcher, when set, makes the coordinator the mapping authority for
	// Insert: it assigns GOids to new objects and its tables back the
	// coordinator's certification. Wire Tables to Matcher.Tables().
	Matcher *isomer.Matcher
	// Tracer, when non-nil, records each query as a span tree whose per-site
	// RPC spans carry the IDs propagated to the servers.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives query counters, latency histograms,
	// and per-site-pair byte accounting as seen from the coordinator.
	Metrics *metrics.Registry
	// Log, when non-nil, receives structured query logs.
	Log *slog.Logger

	// mu guards Tables (and the Matcher behind it) between concurrent
	// Query and Insert calls.
	mu   sync.RWMutex
	qseq atomic.Uint64
}

// qctx scopes one networked query execution.
type qctx struct {
	qid  string
	alg  string
	root trace.SpanID
}

// qidTag distinguishes this process's query IDs. Query IDs scope spans at
// the *servers*, which outlive coordinator processes: if every coordinator
// run minted "rq1", a site's /debug/trace/last would conflate the last
// queries of different runs into one tree.
var qidTag = rand.Uint32() & 0xffffff

// span opens a query-scoped span at the coordinator site.
func (c *Coordinator) span(q *qctx, parent trace.SpanID, name, phases string) trace.Handle {
	return c.Tracer.StartSpan(parent, c.ID, name).WithQuery(q.qid, q.alg).WithPhases(phases)
}

// Ping verifies every site server is reachable.
func (c *Coordinator) Ping() error {
	for site, addr := range c.Sites {
		if _, _, err := call(addr, Request{Kind: kindPing}); err != nil {
			return fmt.Errorf("remote: site %s unreachable: %w", site, err)
		}
	}
	return nil
}

// Query parses, binds and executes a global query under the given strategy
// across the cluster, returning the answer and the wall-clock time spent.
func (c *Coordinator) Query(text string, alg exec.Algorithm) (*federation.Answer, time.Duration, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, 0, err
	}
	b, err := query.Bind(q, c.Global)
	if err != nil {
		return nil, 0, err
	}

	start := time.Now()
	qc := &qctx{qid: fmt.Sprintf("rq%d-%06x", c.qseq.Add(1), qidTag), alg: alg.String()}
	root := c.span(qc, 0, alg.String(), "")
	qc.root = root.ID()
	var ans *federation.Answer
	switch alg {
	case exec.CA:
		ans, err = c.runCA(qc, text, b)
	case exec.BL:
		ans, err = c.runLocalized(qc, text, b, ModeBL)
	case exec.PL:
		ans, err = c.runLocalized(qc, text, b, ModePL)
	case exec.SBL:
		ans, err = c.runLocalized(qc, text, b, ModeSBL)
	case exec.SPL:
		ans, err = c.runLocalized(qc, text, b, ModeSPL)
	default:
		root.End()
		return nil, 0, fmt.Errorf("remote: unsupported algorithm %v", alg)
	}
	if ans != nil {
		root.Add("certain", int64(len(ans.Certain))).Add("maybe", int64(len(ans.Maybe)))
	}
	root.End()
	d := time.Since(start)
	c.observeQuery(qc, ans, d, err)
	if err != nil {
		return nil, 0, err
	}
	return ans, d, nil
}

// observeQuery feeds the query's metrics and structured log entry.
func (c *Coordinator) observeQuery(q *qctx, ans *federation.Answer, d time.Duration, err error) {
	us := float64(d.Nanoseconds()) / 1e3
	self := string(c.ID)
	c.Metrics.Counter("queries_total", metrics.Labels{Site: self, Alg: q.alg}).Inc()
	c.Metrics.Histogram("query_latency_us", metrics.Labels{Site: self, Alg: q.alg}).Observe(us)
	if ans != nil {
		algOnly := metrics.Labels{Alg: q.alg}
		c.Metrics.Counter("results_certain_total", algOnly).Add(int64(len(ans.Certain)))
		c.Metrics.Counter("results_maybe_total", algOnly).Add(int64(len(ans.Maybe)))
		c.Metrics.Counter("maybe_certified_total", algOnly).Add(int64(ans.Stats.Certified))
		c.Metrics.Counter("maybe_eliminated_total", algOnly).Add(int64(ans.Stats.Eliminated))
	}
	if c.Log != nil {
		attrs := []slog.Attr{
			slog.String("query", q.qid),
			slog.String("alg", q.alg),
			slog.Float64("us", us),
		}
		if ans != nil {
			attrs = append(attrs,
				slog.Int("certain", len(ans.Certain)),
				slog.Int("maybe", len(ans.Maybe)),
				slog.Int("certified", ans.Stats.Certified),
				slog.Int("eliminated", ans.Stats.Eliminated))
		}
		if err != nil {
			attrs = append(attrs, slog.String("err", err.Error()))
			c.Log.LogAttrs(context.Background(), slog.LevelError, "query failed", attrs...)
			return
		}
		c.Log.LogAttrs(context.Background(), slog.LevelInfo, "query done", attrs...)
	}
}

// Insert stores a new object at a component site and maintains the
// replicated GOid mapping tables: the coordinator (mapping authority)
// matches the object against existing entities, binds it, and broadcasts
// the binding delta to every site replica. Distributed atomicity is out of
// scope (a failed broadcast leaves replicas stale; the paper defers
// replicated-data management to the underlying mechanism).
func (c *Coordinator) Insert(site object.SiteID, o *object.Object) (object.GOid, error) {
	if c.Matcher == nil {
		return "", fmt.Errorf("remote: coordinator has no mapping authority (Matcher)")
	}
	addr, ok := c.Sites[site]
	if !ok {
		return "", fmt.Errorf("remote: no address for site %s", site)
	}
	gc := c.Global.GlobalFor(site, o.Class)
	if gc == nil {
		return "", fmt.Errorf("remote: class %s@%s is not integrated", o.Class, site)
	}

	// 1. Store at the owning site.
	if _, _, err := call(addr, Request{Kind: kindStore, Store: o}); err != nil {
		return "", err
	}
	// 2. Assign the GOid (entity match by key).
	c.mu.Lock()
	goid, err := c.Matcher.Add(site, o.Class, o)
	c.mu.Unlock()
	if err != nil {
		return "", err
	}
	// 3. Broadcast the delta to every replica.
	delta := &BindDelta{Class: gc.Name, GOid: goid, Site: site, LOid: o.LOid}
	for peer, peerAddr := range c.Sites {
		if _, _, err := call(peerAddr, Request{Kind: kindBind, Bind: delta}); err != nil {
			return goid, fmt.Errorf("remote: replica at %s is stale: %w", peer, err)
		}
	}
	return goid, nil
}

// fanOut calls every listed site in parallel and collects responses in
// site order. Each call runs under its own child span of the query root,
// whose ID the server adopts as its parent; wire bytes are accounted per
// site pair in both directions as seen from the coordinator.
func (c *Coordinator) fanOut(q *qctx, phases string, sites []object.SiteID, req Request) ([]Response, error) {
	resps := make([]Response, len(sites))
	errs := make([]error, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		addr, ok := c.Sites[site]
		if !ok {
			return nil, fmt.Errorf("remote: no address for site %s", site)
		}
		wg.Add(1)
		go func(i int, site object.SiteID, addr string) {
			defer wg.Done()
			sp := c.span(q, q.root, "rpc:"+req.Kind, phases)
			req := req
			req.Trace = TraceContext{QueryID: q.qid, Alg: q.alg, Span: uint64(sp.ID()), From: c.ID}
			var w wireStats
			resps[i], w, errs[i] = call(addr, req)
			sp.Add("sent_bytes", w.Sent).Add("recv_bytes", w.Received).
				Detailf("site %s", site)
			sp.End()
			c.Metrics.Counter("net_bytes_total",
				metrics.Labels{Site: string(c.ID), Peer: string(site), Alg: q.alg}).Add(w.Sent)
			c.Metrics.Counter("net_bytes_total",
				metrics.Labels{Site: string(site), Peer: string(c.ID), Alg: q.alg}).Add(w.Received)
		}(i, site, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

func (c *Coordinator) runCA(q *qctx, text string, b *query.Bound) (*federation.Answer, error) {
	resps, err := c.fanOut(q, "O", b.InvolvedSites(), Request{Kind: kindRetrieve, Query: text})
	if err != nil {
		return nil, err
	}
	replies := make([]federation.RetrieveReply, len(resps))
	for i, r := range resps {
		replies[i] = r.Retrieve
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	err = runReal("ca-coordinator", func(p fabric.Proc) {
		g2 := c.span(q, q.root, "CA_G2", "I")
		view := coord.Materialize(p, b, replies)
		g2.Detailf("materialized %d objects", view.Len()).End()
		g3 := c.span(q, q.root, "CA_G3", "P")
		ans = coord.EvaluateView(p, b, view)
		g3.End()
	})
	return ans, err
}

func (c *Coordinator) runLocalized(q *qctx, text string, b *query.Bound, mode string) (*federation.Answer, error) {
	resps, err := c.fanOut(q, reqPhases(Request{Kind: kindLocal, Mode: mode}), b.RootSites(),
		Request{Kind: kindLocal, Query: text, Mode: mode})
	if err != nil {
		return nil, err
	}
	var (
		results []federation.LocalResult
		replies []federation.CheckReply
	)
	for _, r := range resps {
		results = append(results, r.Local.Result)
		replies = append(replies, r.Local.CheckReplies...)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	coord := federation.NewCoordinator(c.ID, c.Global, c.Tables)
	var ans *federation.Answer
	err = runReal("certify", func(p fabric.Proc) {
		g2 := c.span(q, q.root, "certify", "I")
		ans = coord.Certify(p, b, results, replies)
		g2.End()
	})
	return ans, err
}
