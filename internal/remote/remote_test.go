package remote

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/tvl"
)

// startCluster brings up the school federation as three TCP servers on
// loopback and returns a coordinator wired to them.
func startCluster(t *testing.T) (*Coordinator, func()) {
	t.Helper()
	fx := school.New()
	sigs := signature.Build(fx.Databases)

	servers := make(map[object.SiteID]*Server, len(fx.Databases))
	addrs := make(map[object.SiteID]string, len(fx.Databases))
	for site, db := range fx.Databases {
		srv, err := NewServer(ServerConfig{
			DB:         db,
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
		})
		if err != nil {
			t.Fatalf("NewServer(%s): %v", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%s): %v", site, err)
		}
		servers[site] = srv
		addrs[site] = srv.Addr()
	}
	// Every server learns its peers' addresses.
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	coord := &Coordinator{
		ID:     "G",
		Global: fx.Global,
		Tables: fx.Mapping,
		Sites:  addrs,
	}
	cleanup := func() {
		for _, srv := range servers {
			if err := srv.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}
	}
	return coord, cleanup
}

func TestClusterPing(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()
	if err := coord.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

// TestClusterQ1AllAlgorithms runs the paper's Q1 across the real TCP
// cluster under every strategy and expects the paper's answer.
func TestClusterQ1AllAlgorithms(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()

	for _, alg := range exec.AllAlgorithms() {
		ans, elapsed, err := coord.Query(school.Q1, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed time", alg)
		}
		if len(ans.Certain) != 1 || ans.Certain[0].GOid != "gs4" {
			t.Errorf("%v certain = %v", alg, ans.Certain)
		}
		if len(ans.Maybe) != 1 || ans.Maybe[0].GOid != "gs2" {
			t.Errorf("%v maybe = %v", alg, ans.Maybe)
		}
		if got := ans.Certain[0].Targets[0]; !got.Equal(object.Str("Hedy")) {
			t.Errorf("%v certain targets = %v", alg, ans.Certain[0].Targets)
		}
	}
}

func TestClusterAdHocQuery(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()

	ans, _, err := coord.Query(`select name from Student where age > 25`, exec.BL)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// John (31) and Tony (28) have age > 25 certainly; Hedy and Fanny have
	// no age anywhere (maybe); Mary is 24 (out).
	if len(ans.Certain) != 2 {
		t.Errorf("certain = %v", ans.Certain)
	}
	if len(ans.Maybe) != 2 {
		t.Errorf("maybe = %v", ans.Maybe)
	}
}

func TestClusterErrors(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()

	if _, _, err := coord.Query(`select nope from Student`, exec.BL); err == nil {
		t.Error("bad query accepted")
	}
	if _, _, err := coord.Query(`select * broken`, exec.BL); err == nil {
		t.Error("unparsable query accepted")
	}
	if _, _, err := coord.Query(school.Q1, exec.Algorithm(42)); err == nil {
		t.Error("unknown algorithm accepted")
	}

	// A site absent from the address map entirely (killed and unwired)
	// degrades exactly like one that stopped answering: the query still
	// returns, with the missing sites reported unavailable — not an error.
	bad := &Coordinator{ID: "G", Global: coord.Global, Tables: coord.Tables,
		Sites: map[object.SiteID]string{"DB1": coord.Sites["DB1"]}}
	defer bad.Close()
	ans, _, err := bad.Query(school.Q1, exec.BL)
	if err != nil {
		t.Errorf("missing site addresses errored instead of degrading: %v", err)
	} else {
		if !ans.Degraded || len(ans.Unavailable) == 0 {
			t.Errorf("missing site addresses did not degrade the answer: %+v", ans)
		}
		for _, f := range ans.Unavailable {
			if f.Site != "DB2" && f.Site != "DB3" {
				t.Errorf("unexpected unavailable site %s: %v", f.Site, ans.Unavailable)
			}
		}
	}

	// Unreachable server.
	down := &Coordinator{ID: "G", Global: coord.Global, Tables: coord.Tables,
		Sites: map[object.SiteID]string{
			"DB1": "127.0.0.1:1", "DB2": "127.0.0.1:1", "DB3": "127.0.0.1:1",
		}}
	if err := down.Ping(); err == nil {
		t.Error("unreachable cluster pinged successfully")
	}
}

// testCall performs one client exchange against addr (no retries), for
// tests poking a server directly.
func testCall(t *testing.T, addr string, req Request) (Response, error) {
	t.Helper()
	cl := newClient("TEST", CallConfig{Attempts: 1}, nil)
	defer cl.close()
	resp, _, err := cl.call("peer", addr, req)
	return resp, err
}

func TestServerRejectsBadRequests(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()
	addr := coord.Sites["DB1"]

	if _, err := testCall(t, addr, Request{Kind: "nonsense"}); err == nil ||
		!strings.Contains(err.Error(), "unknown request kind") {
		t.Errorf("bad kind: %v", err)
	}
	if _, err := testCall(t, addr, Request{Kind: kindLocal, Query: school.Q1, Mode: "XX"}); err == nil ||
		!strings.Contains(err.Error(), "unknown local mode") {
		t.Errorf("bad mode: %v", err)
	}
	if _, err := testCall(t, addr, Request{Kind: kindLocal, Query: "select", Mode: ModeBL}); err == nil {
		t.Error("bad query accepted")
	}
}

func TestNewServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

// TestGobRoundTripMessages pins the wire encodability of every protocol
// payload, including object values inside rows.
func TestGobRoundTripMessages(t *testing.T) {
	resp := Response{
		Local: LocalReply{
			Result: federation.LocalResult{
				Site: "DB1",
				Rows: []federation.LocalRow{{
					LOid:     "s1",
					GOid:     "gs1",
					Targets:  []object.Value{object.Str("John"), object.Null(), object.GRef("gt1")},
					Verdicts: []tvl.Truth{tvl.True, tvl.Unknown},
				}},
			},
			CheckReplies: []federation.CheckReply{{
				Site: "DB2",
				Verdicts: []federation.CheckVerdict{
					{ItemGOid: "gt1", SourceIdx: 1, SuffixLen: 1, Verdict: tvl.False},
				},
			}},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Response
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	row := got.Local.Result.Rows[0]
	if !row.Targets[0].Equal(object.Str("John")) || !row.Targets[1].IsNull() ||
		row.Targets[2].RefGOid() != "gt1" {
		t.Errorf("targets corrupted: %v", row.Targets)
	}
	if got.Local.CheckReplies[0].Verdicts[0].Verdict != tvl.False {
		t.Error("verdict corrupted")
	}
}

// TestClusterInsertMaintainsReplicas exercises the write path: inserting
// Haley's missing teacher record at DB2 (where speciality is stored) must
// update every site's mapping-table replica, so the next run of Q1 resolves
// Tony's advisor.speciality predicate through the new assistant object —
// his maybe result keeps only the address predicate unknown.
func TestClusterInsertMaintainsReplicas(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()

	// Make the coordinator the mapping authority over the school tables.
	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	// Before: Tony is maybe with both address and speciality unknown.
	ans, _, err := coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Maybe) != 1 || len(ans.Maybe[0].Unknown) != 2 {
		t.Fatalf("before insert: %+v", ans.Maybe)
	}

	// Insert Haley's record at DB2 — an isomeric object holding the
	// missing speciality.
	goid, err := coord.Insert("DB2", object.New("t9'", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"), "speciality": object.Str("database"),
	}))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if goid != "gt3" {
		t.Errorf("Haley's record matched %s, want gt3", goid)
	}

	// After: the speciality predicate certifies through the new assistant;
	// only the address predicate stays unknown.
	ans, _, err = coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Maybe) != 1 || len(ans.Maybe[0].Unknown) != 1 || ans.Maybe[0].Unknown[0] != 0 {
		t.Fatalf("after insert: %+v", ans.Maybe)
	}
	// CA over the cluster agrees.
	ansCA, _, err := coord.Query(school.Q1, exec.CA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ansCA.Maybe) != 1 || len(ansCA.Maybe[0].Unknown) != 1 {
		t.Fatalf("CA after insert: %+v", ansCA.Maybe)
	}
}

// TestClusterInsertNewEntity: an object whose key matches nothing becomes a
// fresh entity with a generated GOid that avoids existing names.
func TestClusterInsertNewEntity(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()
	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	goid, err := coord.Insert("DB3", object.New("tX''", "Teacher", map[string]object.Value{
		"name": object.Str("Newton"), "department": object.Ref("d3''"),
	}))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if goid == "" || goid == "gt1" || goid == "gt2" || goid == "gt3" || goid == "gt4" {
		t.Errorf("new entity GOid = %s", goid)
	}
}

func TestClusterInsertErrors(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()

	o := object.New("x", "Teacher", map[string]object.Value{"name": object.Str("X")})
	// No matcher configured.
	if _, err := coord.Insert("DB1", o); err == nil {
		t.Error("insert without matcher accepted")
	}
	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	// Unknown site.
	if _, err := coord.Insert("DB9", o); err == nil {
		t.Error("unknown site accepted")
	}
	// Class not integrated at the site (DB3 has no Student).
	if _, err := coord.Insert("DB3", object.New("sX", "Student", nil)); err == nil {
		t.Error("non-constituent class accepted")
	}
	// Invalid object (duplicate LOid at DB1).
	if _, err := coord.Insert("DB1", object.New("t1", "Teacher",
		map[string]object.Value{"name": object.Str("Dup")})); err == nil {
		t.Error("duplicate LOid accepted")
	}
}

// TestClusterConcurrentQueriesAndInserts hammers the cluster with parallel
// queries while inserts mutate the databases and replicas — the server's
// state lock must keep every request consistent (run with -race).
func TestClusterConcurrentQueriesAndInserts(t *testing.T) {
	coord, cleanup := startCluster(t)
	defer cleanup()
	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				for _, alg := range []exec.Algorithm{exec.CA, exec.BL, exec.PL} {
					if _, _, err := coord.Query(school.Q1, alg); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 6; j++ {
			o := object.New(object.LOid(fmt.Sprintf("tnew%d''", j)), "Teacher",
				map[string]object.Value{"name": object.Str(fmt.Sprintf("NewTeacher%d", j))})
			if _, err := coord.Insert("DB3", o); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op failed: %v", err)
	}

	// The federation still answers Q1 correctly afterwards.
	ans, _, err := coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || ans.Certain[0].GOid != "gs4" {
		t.Errorf("post-stress answer = %v", ans.Certain)
	}
}
