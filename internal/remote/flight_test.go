package remote

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
)

// startRecordedCluster wires a 3-site cluster with a tracer and flight
// recorder on every server and on the coordinator (ring size ringSize at the
// coordinator), the full observability path of a production deployment.
func startRecordedCluster(t *testing.T, ringSize int) (*Coordinator, map[object.SiteID]*Server, func()) {
	t.Helper()
	fx := school.New()
	sigs := signature.Build(fx.Databases)

	servers := make(map[object.SiteID]*Server, len(fx.Databases))
	addrs := make(map[object.SiteID]string, len(fx.Databases))
	for site, db := range fx.Databases {
		srv, err := NewServer(ServerConfig{
			DB:         db,
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
			Tracer:     &trace.Tracer{},
			Metrics:    metrics.New(),
			Recorder:   obs.NewRecorder(obs.RecorderConfig{Site: string(site)}),
		})
		if err != nil {
			t.Fatalf("NewServer(%s): %v", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%s): %v", site, err)
		}
		servers[site] = srv
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}
	coord := &Coordinator{
		ID:       "G",
		Global:   fx.Global,
		Tables:   fx.Mapping,
		Sites:    addrs,
		Tracer:   &trace.Tracer{},
		Metrics:  metrics.New(),
		Recorder: obs.NewRecorder(obs.RecorderConfig{Site: "G", Size: ringSize}),
	}
	cleanup := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	return coord, servers, cleanup
}

// TestClusterProfileCoversAllSites: a coordinator-side profile of a served
// query must include the spans every participating site shipped back, and
// its Chrome trace export must be valid JSON naming each of them.
func TestClusterProfileCoversAllSites(t *testing.T) {
	coord, _, cleanup := startRecordedCluster(t, 8)
	defer cleanup()
	defer coord.Close()

	// CA touches every site from the coordinator; BL reaches DB3 only
	// site-to-site (check traffic), so its spans arrive transitively.
	for _, alg := range []exec.Algorithm{exec.CA, exec.BL} {
		if _, _, err := coord.Query(school.Q1, alg); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		p := coord.Recorder.Last()
		if p == nil {
			t.Fatalf("%v: no profile recorded", alg)
		}
		if p.Status != trace.StatusOK {
			t.Errorf("%v: status = %s", alg, p.Status)
		}
		siteSeen := make(map[string]bool)
		for _, s := range p.Sites {
			siteSeen[string(s)] = true
		}
		for _, site := range []string{"G", "DB1", "DB2", "DB3"} {
			if !siteSeen[site] {
				t.Errorf("%v: profile sites %v missing %s", alg, p.Sites, site)
			}
		}
		if p.Phases.Total() <= 0 {
			t.Errorf("%v: no phase attribution", alg)
		}

		data, err := p.ChromeTrace()
		if err != nil {
			t.Fatalf("%v: ChromeTrace: %v", alg, err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph   string         `json:"ph"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%v: export is not valid JSON: %v", alg, err)
		}
		named := make(map[string]bool)
		for _, e := range doc.TraceEvents {
			if e.Ph == "M" {
				if n, ok := e.Args["name"].(string); ok {
					named[n] = true
				}
			}
		}
		for _, site := range []string{"G", "DB1", "DB2", "DB3"} {
			if !named[site] {
				t.Errorf("%v: Chrome trace lacks a process for %s", alg, site)
			}
		}
	}
}

// TestClusterSiteRecorders: traced requests leave profiles in the serving
// sites' own flight recorders, not only the coordinator's.
func TestClusterSiteRecorders(t *testing.T) {
	coord, servers, cleanup := startRecordedCluster(t, 8)
	defer cleanup()
	defer coord.Close()

	if _, _, err := coord.Query(school.Q1, exec.CA); err != nil {
		t.Fatal(err)
	}
	for site, srv := range servers {
		if srv.cfg.Recorder.Recorded() == 0 {
			t.Errorf("site %s recorded no profiles for a CA query", site)
		}
		p := srv.cfg.Recorder.Last()
		if p == nil || p.ID == "" {
			t.Errorf("site %s profile = %+v", site, p)
		}
	}
}

// TestClusterDegradedProfileRetained: the acceptance scenario — a query that
// degrades mid-flight (a site dies) stays resolvable in the coordinator's
// flight recorder after more than a ring's worth of healthy queries.
func TestClusterDegradedProfileRetained(t *testing.T) {
	const ring = 4
	coord, servers, cleanup := startRecordedCluster(t, ring)
	defer cleanup()
	coord.Call = fastFail
	defer coord.Close()

	// Kill DB3 and run one query: it degrades rather than failing.
	addr3 := servers["DB3"].Addr()
	if err := servers["DB3"].Close(); err != nil {
		t.Fatalf("killing DB3: %v", err)
	}
	ans, _, err := coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("answer not degraded with DB3 down")
	}
	degraded := coord.Recorder.Last()
	if degraded == nil || degraded.Status != trace.StatusDegraded {
		t.Fatalf("degraded profile = %+v", degraded)
	}

	// Bring DB3 back on its old address so the follow-up traffic is healthy.
	fx := school.New()
	srv3, err := NewServer(ServerConfig{
		DB:         fx.Databases["DB3"],
		Global:     fx.Global,
		Tables:     fx.Mapping,
		Signatures: signature.Build(fx.Databases),
		Tracer:     &trace.Tracer{},
		Metrics:    metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var lerr error
	for i := 0; i < 50; i++ { // the freed port can linger briefly
		if lerr = srv3.Listen(addr3); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("relisten on %s: %v", addr3, lerr)
	}
	defer srv3.Close()
	addrs := make(map[object.SiteID]string)
	for site, srv := range servers {
		addrs[site] = srv.Addr()
	}
	srv3.SetPeers(addrs)

	// Flood with healthy queries, several ring-fulls past capacity.
	healthy := 0
	for i := 0; i < 3*ring; i++ {
		ans, _, err := coord.Query(school.Q1, exec.BL)
		if err != nil {
			t.Fatalf("healthy query %d: %v", i, err)
		}
		if !ans.Degraded {
			healthy++
		}
	}
	if healthy < ring {
		t.Fatalf("only %d healthy queries completed, need ≥ %d to pressure the ring", healthy, ring)
	}

	got := coord.Recorder.Get(degraded.ID)
	if got == nil {
		t.Fatalf("degraded profile %s evicted after %d healthy queries (ring size %d)",
			degraded.ID, healthy, ring)
	}
	if got.Status != trace.StatusDegraded {
		t.Errorf("retained profile status = %s", got.Status)
	}
	found := false
	for _, s := range got.Unavailable {
		if s == "DB3" {
			found = true
		}
	}
	if !found {
		t.Errorf("retained profile unavailable = %v, want DB3", got.Unavailable)
	}
	// The ring itself stays bounded.
	if n := len(coord.Recorder.Profiles()); n > ring {
		t.Errorf("recorder holds %d profiles, ring size %d", n, ring)
	}
}
