package remote

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/hetfed/hetfed/internal/antientropy"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
)

// Anti-entropy rounds: the symmetric replica-repair protocol both site
// servers and the coordinator run. One round, for one process:
//
//  1. For every peer (sorted, so schedules are deterministic): send the
//     local per-class digest snapshot (kindDigest) and diff it against the
//     peer's reply.
//  2. For every divergent class: diff the buckets, collect the local
//     bindings in those buckets, and run one kindRepair exchange — the
//     peer applies what it is missing and replies with its own bindings in
//     the same buckets, which are applied locally. Both replicas hold the
//     union afterwards; application is idempotent, so duplicated or
//     re-ordered repair traffic is harmless.
//  3. Quorum accounting: a class that could not be converged with a peer
//     (repair unreachable, or conflicts remained) disagrees with that
//     peer. A class disagreeing with a majority of the reached peers — or
//     any class, when fewer than half the peers were reachable at all (a
//     minority partition cannot confirm its replica with quorum) — is
//     marked suspect; answers touching it degrade until a later round
//     clears it. With no peers reached the previous marks are kept: no
//     information is not good news.
//
// The protocol replaces nothing the coordinator's needs-rebuild replay
// does for fresh restarts — it catches what replay cannot: divergence
// where *either* end was partitioned, killed, or restarted from stale
// durable state, with no coordinator in the loop.

// aeReplica is the local-replica surface a round needs; the server and the
// coordinator provide it over their own locking disciplines.
type aeReplica struct {
	self    object.SiteID
	client  *client
	tracker *antientropy.Tracker
	reg     *metrics.Registry
	timeout time.Duration
	// bindings returns the local bindings of class hashing into buckets,
	// under the replica's read lock.
	bindings func(class string, buckets []int) []antientropy.Binding
	// apply applies a peer's bindings under the replica's write lock,
	// returning how many were newly applied and how many conflicted.
	apply func(class string, bs []antientropy.Binding) (applied, conflicts int)
	// lockPeer, when set, serializes this round's traffic to one peer
	// against the replica's other maintenance streams to the same peer
	// (the coordinator's resync replay); it returns the unlock.
	lockPeer func(site object.SiteID) func()
}

// runAntiEntropyRound executes one round against the given peers and
// returns the number of classes that were divergent with at least one
// reached peer (0 means the replicas agreed everywhere they could be
// compared).
func runAntiEntropyRound(ctx context.Context, r aeReplica, peers map[object.SiteID]string) int {
	sites := make([]object.SiteID, 0, len(peers))
	for site := range peers {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var (
		reached   int
		repaired  int
		bytes     int64
		divergent = make(map[string]bool)
		disagree  = make(map[string]int) // class → peers it could not converge with
	)
	exchange := func(site object.SiteID) {
		req := Request{Kind: kindDigest, Digests: r.tracker.Snapshot(), Trace: TraceContext{From: r.self}}
		resp, w, err := r.client.callTimeout(ctx, site, peers[site], req, r.timeout)
		bytes += w.Sent + w.Received
		r.reg.Counter("antientropy_exchanges_total",
			metrics.Labels{Site: string(r.self), Peer: string(site)}).Inc()
		if err != nil {
			return
		}
		reached++
		// Diff against a fresh snapshot: repairs against earlier peers in
		// this same round have already moved the local digest.
		for _, class := range antientropy.DiffClasses(r.tracker.Snapshot(), resp.Digests) {
			divergent[class] = true
			buckets := antientropy.DiffBuckets(r.tracker.Digest(class), resp.Digests[class])
			mine := r.bindings(class, buckets)
			rreq := Request{
				Kind:  kindRepair,
				Trace: TraceContext{From: r.self},
				Repair: &RepairRequest{
					Class:    class,
					Buckets:  buckets,
					Bindings: mine,
				},
			}
			rresp, rw, rerr := r.client.callTimeout(ctx, site, peers[site], rreq, r.timeout)
			bytes += rw.Sent + rw.Received
			if rerr != nil || rresp.Repair == nil {
				// Divergence seen but not converged (the peer vanished
				// between the digest and the repair): it still counts
				// against the quorum.
				disagree[class]++
				continue
			}
			applied, conflicts := r.apply(class, rresp.Repair.Bindings)
			repaired += applied + rresp.Repair.Applied
			if conflicts+rresp.Repair.Conflicts > 0 {
				// The replicas hold genuinely contradictory bindings;
				// repair never overwrites, so they will not converge
				// without intervention. Stay suspect.
				disagree[class]++
			}
		}
	}
	for _, site := range sites {
		if ctx.Err() != nil {
			break
		}
		if r.lockPeer != nil {
			unlock := r.lockPeer(site)
			exchange(site)
			unlock()
		} else {
			exchange(site)
		}
	}

	// Quorum marks. Classes to judge: everything in the local snapshot plus
	// everything that diverged (a class the peer has and we lack shows up
	// only in the diff).
	classes := make(map[string]bool)
	for class := range r.tracker.Snapshot() {
		classes[class] = true
	}
	for class := range divergent {
		classes[class] = true
	}
	switch {
	case len(peers) == 0:
		// A cluster of one has nothing to agree with.
	case reached == 0:
		// Total isolation: no new information, keep previous marks.
	case reached*2 < len(peers):
		// Minority partition: this replica cannot confirm any class with a
		// quorum of peers, so every class it serves is suspect.
		for class := range classes {
			r.tracker.MarkSuspect(class, fmt.Sprintf("reached %d of %d peers", reached, len(peers)))
		}
	default:
		for class := range classes {
			if disagree[class]*2 > reached {
				r.tracker.MarkSuspect(class, fmt.Sprintf("diverged with %d of %d reached peers", disagree[class], reached))
			} else {
				r.tracker.ClearSuspect(class)
			}
		}
	}

	r.tracker.EndRound(repaired, bytes)
	r.reg.Counter("antientropy_rounds_total", metrics.Labels{Site: string(r.self)}).Inc()
	r.reg.Counter("antientropy_repair_bytes_total", metrics.Labels{Site: string(r.self)}).Add(bytes)
	if repaired > 0 {
		r.reg.Counter("antientropy_repair_bindings_total",
			metrics.Labels{Site: string(r.self)}).Add(int64(repaired))
	}
	r.reg.Gauge("antientropy_suspect_classes",
		metrics.Labels{Site: string(r.self)}).Set(int64(len(r.tracker.Suspects())))
	return len(divergent)
}

// RunAntiEntropyRound runs one digest-exchange round against this server's
// peers and returns the number of divergent classes found. The background
// loop (ServerConfig.AntiEntropy) calls it on its cadence; tests and
// operators may call it directly for an on-demand repair pass.
func (s *Server) RunAntiEntropyRound(ctx context.Context) int {
	s.mu.Lock()
	peers := make(map[object.SiteID]string, len(s.cfg.Peers))
	for site, addr := range s.cfg.Peers {
		peers[site] = addr
	}
	s.mu.Unlock()
	return runAntiEntropyRound(ctx, aeReplica{
		self:    s.Site(),
		client:  s.client,
		tracker: s.tracker,
		reg:     s.cfg.Metrics,
		timeout: s.cfg.AntiEntropy.timeout(),
		bindings: func(class string, buckets []int) []antientropy.Binding {
			s.stateMu.RLock()
			defer s.stateMu.RUnlock()
			return antientropy.BucketBindings(s.cfg.Tables.Table(class), buckets)
		},
		apply: func(class string, bs []antientropy.Binding) (int, int) {
			s.stateMu.Lock()
			defer s.stateMu.Unlock()
			var applied, conflicts int
			for _, b := range bs {
				ok, err := s.applyBindLocked(class, b.GOid, b.Site, b.LOid)
				switch {
				case err != nil:
					conflicts++
					s.tracker.NoteConflict()
				case ok:
					applied++
				}
			}
			return applied, conflicts
		},
	}, peers)
}

// Tracker exposes the server's divergence tracker (health surfaces, tests).
func (s *Server) Tracker() *antientropy.Tracker { return s.tracker }

// DigestSnapshot returns the server's current per-class digests — the
// convergence check chaos schedules assert on.
func (s *Server) DigestSnapshot() map[string]antientropy.Digest {
	return s.tracker.Snapshot()
}
