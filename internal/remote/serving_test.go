package remote

import (
	"sync"
	"testing"
	"time"

	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
)

// startClusterWith is startCluster with a shared metrics registry and a
// per-server config hook, returning the servers for direct inspection.
func startClusterWith(t *testing.T, reg *metrics.Registry, mutate func(*ServerConfig)) (*Coordinator, map[object.SiteID]*Server, func()) {
	t.Helper()
	fx := school.New()
	sigs := signature.Build(fx.Databases)

	servers := make(map[object.SiteID]*Server, len(fx.Databases))
	addrs := make(map[object.SiteID]string, len(fx.Databases))
	for site, db := range fx.Databases {
		cfg := ServerConfig{
			DB:         db,
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
			Metrics:    reg,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatalf("NewServer(%s): %v", site, err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("Listen(%s): %v", site, err)
		}
		servers[site] = srv
		addrs[site] = srv.Addr()
	}
	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	coord := &Coordinator{
		ID:      "G",
		Global:  fx.Global,
		Tables:  fx.Mapping,
		Sites:   addrs,
		Metrics: reg,
	}
	cleanup := func() {
		for _, srv := range servers {
			if err := srv.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}
	}
	return coord, servers, cleanup
}

// TestStalePooledConnRedial: a connection that idled in the pool across a
// server restart is dead on first use. The client must detect this, redial
// once for free — without consuming the (single) retry attempt or charging
// the breaker — and complete the call against the restarted server.
func TestStalePooledConnRedial(t *testing.T) {
	fx := school.New()
	reg := metrics.New()
	srv, err := NewServer(ServerConfig{DB: fx.Databases["DB1"], Global: fx.Global, Tables: fx.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	coord := &Coordinator{
		ID:     "G",
		Global: fx.Global,
		Tables: fx.Mapping,
		Sites:  map[object.SiteID]string{"DB1": addr},
		// One attempt: if the stale-connection probe consumed it, the call
		// would fail instead of succeeding via the free redial.
		Call:    CallConfig{Attempts: 1},
		Metrics: reg,
	}
	if err := coord.Ping(); err != nil {
		t.Fatalf("first ping: %v", err)
	}

	// Restart the server on the same address; the pooled connection dies.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ServerConfig{DB: fx.Databases["DB1"], Global: fx.Global, Tables: fx.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	var lerr error
	for i := 0; i < 50; i++ { // the freed port can linger briefly
		if lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("relisten on %s: %v", addr, lerr)
	}
	defer srv2.Close()

	if err := coord.Ping(); err != nil {
		t.Fatalf("ping after restart: %v (stale pooled conn not redialed)", err)
	}
	lbl := metrics.Labels{Site: "G", Peer: "DB1"}
	if got := reg.Snapshot().CounterValue("pool_stale_total", lbl); got != 1 {
		t.Errorf("pool_stale_total = %d, want 1", got)
	}
	if got := reg.Snapshot().CounterValue("call_retries_total", lbl); got != 0 {
		t.Errorf("call_retries_total = %d, want 0 (redial must be free)", got)
	}
	if got := reg.Snapshot().CounterValue("call_failures_total", lbl); got != 0 {
		t.Errorf("call_failures_total = %d, want 0", got)
	}
}

// TestBatcherCoalesces drives the batcher directly: two check groups bound
// for the same peer enqueued within one flush window must travel as ONE
// checkbatch RPC, and each waiter must receive its own group-aligned reply.
func TestBatcherCoalesces(t *testing.T) {
	reg := metrics.New()
	_, servers, cleanup := startClusterWith(t, reg, func(cfg *ServerConfig) {
		cfg.Batch = BatchConfig{Window: 50 * time.Millisecond}
	})
	defer cleanup()

	src := servers["DB1"]
	if src.batcher == nil {
		t.Fatal("batcher not constructed despite Batch.Window > 0")
	}
	// Real check items against DB3: gs4's assistant t4' holds the missing
	// speciality — the verdict set must come back per enqueued group.
	item := federation.CheckItem{
		ItemClass: "GStudent",
		ItemGOid:  "gs4",
		Assistant: "t4'",
		SourceIdx: 1,
	}
	e1 := src.batcher.enqueue("DB3", []federation.CheckItem{item}, TraceContext{From: "DB1"}, time.Time{})
	e2 := src.batcher.enqueue("DB3", []federation.CheckItem{item}, TraceContext{From: "DB1"}, time.Time{})
	for i, e := range []*pendingChecks{e1, e2} {
		select {
		case out := <-e.done:
			if out.err != nil {
				t.Fatalf("entry %d: %v", i, out.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("entry %d: no outcome within 5s", i)
		}
	}
	lbl := metrics.Labels{Site: "DB1", Peer: "DB3"}
	if got := reg.Snapshot().CounterValue("check_batches_total", lbl); got != 1 {
		t.Errorf("check_batches_total = %d, want 1 (two groups should share one RPC)", got)
	}
	s, ok := reg.Snapshot().Get("check_batch_groups", metrics.Labels{Site: "DB1"})
	if !ok || s.Hist == nil {
		t.Fatal("check_batch_groups histogram missing")
	}
	if s.Hist.Count != 1 || s.Hist.Sum != 2 {
		t.Errorf("check_batch_groups count=%d sum=%.0f, want count=1 sum=2", s.Hist.Count, s.Hist.Sum)
	}
}

// TestClusterBatchedQueries runs the full strategy suite concurrently with
// check batching enabled on every server: answers must match the paper
// exactly even when the check pipelines of different queries share RPCs.
func TestClusterBatchedQueries(t *testing.T) {
	reg := metrics.New()
	coord, _, cleanup := startClusterWith(t, reg, func(cfg *ServerConfig) {
		cfg.Batch = BatchConfig{Window: 2 * time.Millisecond}
	})
	defer cleanup()
	coord.MaxConcurrent = 8

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		alg := exec.AllAlgorithms()[i%len(exec.AllAlgorithms())]
		wg.Add(1)
		go func(alg exec.Algorithm) {
			defer wg.Done()
			ans, _, err := coord.Query(school.Q1, alg)
			if err != nil {
				t.Errorf("%v: %v", alg, err)
				return
			}
			if len(ans.Certain) != 1 || ans.Certain[0].GOid != "gs4" {
				t.Errorf("%v certain = %v", alg, ans.Certain)
			}
			if len(ans.Maybe) != 1 || ans.Maybe[0].GOid != "gs2" {
				t.Errorf("%v maybe = %v", alg, ans.Maybe)
			}
		}(alg)
	}
	wg.Wait()
}

// TestClusterCacheCoherence: with the lookup cache enabled, an Insert that
// adds a new assistant must invalidate the cached location and verdict
// state so the very next query sees the new binding — the read-through
// cache must never serve a pre-insert answer.
func TestClusterCacheCoherence(t *testing.T) {
	reg := metrics.New()
	coord, _, cleanup := startClusterWith(t, reg, func(cfg *ServerConfig) {
		cfg.Cache = true
	})
	defer cleanup()

	fx := school.New()
	matcher := isomer.NewMatcher(coord.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		t.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	// Warm the caches: run the query twice; the second pass must hit.
	for i := 0; i < 2; i++ {
		ans, _, err := coord.Query(school.Q1, exec.BL)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Maybe) != 1 || len(ans.Maybe[0].Unknown) != 2 {
			t.Fatalf("pre-insert run %d: %+v", i, ans.Maybe)
		}
	}
	hits := reg.Snapshot().CounterValue("cache_hits_total", metrics.Labels{Site: "DB1", Phase: "gmap"})
	if hits == 0 {
		t.Error("cache_hits_total{DB1,gmap} = 0 after repeated query, want > 0")
	}

	// Insert Haley's isomeric record holding the missing speciality.
	if _, err := coord.Insert("DB2", object.New("t9'", "Teacher", map[string]object.Value{
		"name": object.Str("Haley"), "speciality": object.Str("database"),
	})); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	// The next query must already see the new assistant: one unknown left.
	ans, _, err := coord.Query(school.Q1, exec.BL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Maybe) != 1 || len(ans.Maybe[0].Unknown) != 1 || ans.Maybe[0].Unknown[0] != 0 {
		t.Fatalf("post-insert answer stale: %+v", ans.Maybe)
	}
	if inv := reg.Snapshot().CounterValue("cache_invalidations_total", metrics.Labels{Site: "DB2"}); inv == 0 {
		t.Error("cache_invalidations_total{DB2} = 0 after insert, want > 0")
	}
}
