package remote

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// pconn is one pooled connection to a site server. The gob encoder and
// decoder live as long as the connection (gob streams carry type
// information once per stream), and the byte counters meter every exchange.
type pconn struct {
	conn net.Conn
	cw   *countWriter
	cr   *countReader
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (pc *pconn) close() { _ = pc.conn.Close() }

// exchange performs one request/response round trip on the connection under
// the given deadline, returning the bytes moved in each direction. A
// non-nil error means the connection is no longer usable.
//
// A cancelable ctx arms an AfterFunc that slams the connection deadline
// into the past the moment the context dies, so a blocking gob read or
// write unwinds immediately instead of running out its timeout — this is
// how client disconnect propagates into an in-flight exchange. The caller
// distinguishes "ctx killed it" from a genuine transport failure by
// checking ctx.Err first.
func (pc *pconn) exchange(ctx context.Context, req Request, timeout time.Duration) (Response, wireStats, error) {
	_ = pc.conn.SetDeadline(time.Now().Add(timeout))
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			_ = pc.conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	sent0, recv0 := pc.cw.n, pc.cr.n
	stats := func() wireStats { return wireStats{Sent: pc.cw.n - sent0, Received: pc.cr.n - recv0} }
	if err := pc.enc.Encode(req); err != nil {
		return Response{}, stats(), fmt.Errorf("send: %w", err)
	}
	var resp Response
	if err := pc.dec.Decode(&resp); err != nil {
		return Response{}, stats(), fmt.Errorf("receive: %w", err)
	}
	return resp, stats(), nil
}

// pool keeps up to max idle connections to one address, replacing the
// dial-per-request pattern: a hot coordinator reuses warm connections and
// pays the dial (and gob type negotiation) once per connection instead of
// once per call.
type pool struct {
	addr        string
	dialTimeout time.Duration
	max         int

	mu     sync.Mutex
	idle   []*pconn
	closed bool
}

func newPool(addr string, dialTimeout time.Duration, max int) *pool {
	return &pool{addr: addr, dialTimeout: dialTimeout, max: max}
}

// get returns an idle connection or dials a fresh one. pooled reports
// whether the connection came out of the idle set — such a connection may
// have silently died while idle (peer restart), so its first failure is a
// staleness signal rather than evidence the peer is down.
func (p *pool) get() (pc *pconn, pooled bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, true, nil
	}
	p.mu.Unlock()
	pc, err = p.dial()
	return pc, false, err
}

// dial establishes a fresh connection, bypassing the idle set.
func (p *pool) dial() (*pconn, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", p.addr, err)
	}
	cw := &countWriter{w: conn}
	cr := &countReader{r: conn}
	return &pconn{conn: conn, cw: cw, cr: cr, enc: gob.NewEncoder(cw), dec: gob.NewDecoder(cr)}, nil
}

// put returns a healthy connection to the pool, closing it when the pool is
// full or already closed.
func (p *pool) put(pc *pconn) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.max {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.close()
}

// size reports the number of idle pooled connections.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// closeAll closes every idle connection and rejects future put-backs.
func (p *pool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		pc.close()
	}
}
