package cost

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.DiskRead(100)
	c.DiskRead(50)
	c.CPU(7)
	if c.DiskBytes() != 150 || c.CPUOps() != 7 {
		t.Errorf("counter = %d/%d", c.DiskBytes(), c.CPUOps())
	}
	c.Reset()
	if c.DiskBytes() != 0 || c.CPUOps() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.DiskRead(1)
			c.CPU(2)
		}()
	}
	wg.Wait()
	if c.DiskBytes() != 100 || c.CPUOps() != 200 {
		t.Errorf("concurrent counter = %d/%d", c.DiskBytes(), c.CPUOps())
	}
}

func TestDiscard(t *testing.T) {
	Discard.DiskRead(1 << 30)
	Discard.CPU(1 << 30) // must not panic or accumulate anything
}
