package cost

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.DiskRead(100)
	c.DiskRead(50)
	c.CPU(7)
	if c.DiskBytes() != 150 || c.CPUOps() != 7 {
		t.Errorf("counter = %d/%d", c.DiskBytes(), c.CPUOps())
	}
	c.Reset()
	if c.DiskBytes() != 0 || c.CPUOps() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.DiskRead(1)
			c.CPU(2)
		}()
	}
	wg.Wait()
	if c.DiskBytes() != 100 || c.CPUOps() != 200 {
		t.Errorf("concurrent counter = %d/%d", c.DiskBytes(), c.CPUOps())
	}
}

func TestDiscard(t *testing.T) {
	Discard.DiskRead(1 << 30)
	Discard.CPU(1 << 30) // must not panic or accumulate anything
}

func TestRenderColumns(t *testing.T) {
	var a, b, c Breakdown
	a.AddEstimate("DB1", "O", 1000)
	a.AddEstimate("coord", "I", 500)
	b.AddEstimate("DB1", "O", 2000)
	c.Add("DB1", "O", 1500)
	c.Add("DB2", "P", 250)

	out := RenderColumns([]string{"table1", "calibrated", "measured"}, []*Breakdown{&a, &b, &c})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + rows for (DB1,O), (DB2,P), (coord,I) + total.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "table1(ms)") || !strings.Contains(lines[0], "calibrated(ms)") ||
		!strings.Contains(lines[0], "measured(ms)") {
		t.Errorf("header = %q", lines[0])
	}
	// DB1/O appears in every column; DB2/P only in the measured one.
	if !strings.Contains(lines[1], "1.000") || !strings.Contains(lines[1], "2.000") ||
		!strings.Contains(lines[1], "1.500") {
		t.Errorf("DB1 row = %q", lines[1])
	}
	db2 := lines[2]
	if !strings.Contains(db2, "DB2") || strings.Count(db2, "-") != 2 || !strings.Contains(db2, "0.250") {
		t.Errorf("DB2 row = %q", db2)
	}
	// A nil breakdown renders dashes and a zero total (RenderCompare shape).
	two := RenderCompare(&a, nil)
	if !strings.Contains(two, "predicted(ms)") || !strings.Contains(two, "measured(ms)") {
		t.Errorf("compare header missing:\n%s", two)
	}
}
