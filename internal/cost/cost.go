// Package cost defines the cost-event sink through which every layer
// reports the abstract operations of the paper's cost model (Table 1):
// bytes read from disk and CPU operations (comparisons, reference
// navigations, mapping-table lookups). Network transfer costs are charged by
// the fabric per message and do not pass through a Sink.
//
// Implementations either count the events (real executions) or additionally
// block the calling process for the corresponding virtual time (the
// discrete-event fabric).
//
// The package also defines Breakdown, the shared site × phase cost
// attribution shape: the planner emits a predicted Breakdown per strategy
// and a query profile carries the measured one, so EXPLAIN ANALYZE can lay
// the two side by side row for row.
package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Sink receives cost events. Implementations may block the caller to model
// the time the operation takes.
type Sink interface {
	// DiskRead reports bytes read from the local disk.
	DiskRead(bytes int)
	// CPU reports abstract CPU operations (one comparison each).
	CPU(ops int)
}

// Counter is a Sink that tallies events. It is safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	diskBytes atomic.Int64
	cpuOps    atomic.Int64
}

var _ Sink = (*Counter)(nil)

// DiskRead implements Sink.
func (c *Counter) DiskRead(bytes int) { c.diskBytes.Add(int64(bytes)) }

// CPU implements Sink.
func (c *Counter) CPU(ops int) { c.cpuOps.Add(int64(ops)) }

// DiskBytes returns the accumulated disk bytes.
func (c *Counter) DiskBytes() int64 { return c.diskBytes.Load() }

// CPUOps returns the accumulated CPU operations.
func (c *Counter) CPUOps() int64 { return c.cpuOps.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.diskBytes.Store(0)
	c.cpuOps.Store(0)
}

// Discard is a Sink that ignores all events.
var Discard Sink = discard{}

type discard struct{}

func (discard) DiskRead(int) {}
func (discard) CPU(int)      {}

// PhaseCost is one row of a Breakdown: the microseconds a site spent in one
// of the paper's phases (O object location, I integration, P predicate
// processing), with the number of contributing spans when known.
type PhaseCost struct {
	Site   string  `json:"site"`
	Phase  string  `json:"phase"`
	Micros float64 `json:"us"`
	Spans  int     `json:"spans,omitempty"`
}

// Breakdown accumulates cost per (site, phase). The zero value is ready to
// use. It is not safe for concurrent use; callers aggregate single-threaded
// (the planner at plan time, the profile builder at query end).
type Breakdown struct {
	rows map[[2]string]*PhaseCost
}

// Add accumulates micros (and one span) into the site's phase row.
func (b *Breakdown) Add(site, phase string, micros float64) {
	b.add(site, phase, micros, 1)
}

// AddEstimate accumulates micros into the site's phase row without counting
// a span — predicted rows have no spans behind them.
func (b *Breakdown) AddEstimate(site, phase string, micros float64) {
	b.add(site, phase, micros, 0)
}

func (b *Breakdown) add(site, phase string, micros float64, spans int) {
	if b.rows == nil {
		b.rows = make(map[[2]string]*PhaseCost)
	}
	k := [2]string{site, phase}
	r, ok := b.rows[k]
	if !ok {
		r = &PhaseCost{Site: site, Phase: phase}
		b.rows[k] = r
	}
	r.Micros += micros
	r.Spans += spans
}

// Get returns the accumulated micros for a (site, phase) row, 0 when the
// row is absent.
func (b *Breakdown) Get(site, phase string) float64 {
	if b == nil || b.rows == nil {
		return 0
	}
	if r, ok := b.rows[[2]string{site, phase}]; ok {
		return r.Micros
	}
	return 0
}

// Rows returns the breakdown ordered by site then phase (phases in the
// paper's O, I, P order).
func (b *Breakdown) Rows() []PhaseCost {
	if b == nil || b.rows == nil {
		return nil
	}
	out := make([]PhaseCost, 0, len(b.rows))
	for _, r := range b.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return phaseOrder(out[i].Phase) < phaseOrder(out[j].Phase)
	})
	return out
}

// Relabel renames every row of oldSite to newSite, merging into existing
// newSite rows. The planner predicts coordinator work under the placeholder
// site "coord"; the caller relabels it once the coordinator is known.
func (b *Breakdown) Relabel(oldSite, newSite string) {
	if b == nil || b.rows == nil || oldSite == newSite {
		return
	}
	for k, r := range b.rows {
		if k[0] != oldSite {
			continue
		}
		delete(b.rows, k)
		b.add(newSite, k[1], r.Micros, r.Spans)
	}
}

// Total returns the summed micros across all rows.
func (b *Breakdown) Total() float64 {
	if b == nil {
		return 0
	}
	var t float64
	for _, r := range b.rows {
		t += r.Micros
	}
	return t
}

func phaseOrder(p string) int {
	switch p {
	case "O":
		return 0
	case "I":
		return 1
	case "P":
		return 2
	default:
		return 3
	}
}

// RenderCompare lays a predicted and a measured Breakdown side by side, one
// row per (site, phase) appearing in either — the body of the EXPLAIN
// ANALYZE table. Millisecond columns; a dash marks a side with no row.
func RenderCompare(predicted, measured *Breakdown) string {
	return RenderColumns([]string{"predicted", "measured"}, []*Breakdown{predicted, measured})
}

// RenderColumns lays any number of Breakdowns side by side under the given
// column labels ("(ms)" is appended), one row per (site, phase) appearing
// in any of them. The adaptive EXPLAIN uses three columns: the Table 1
// prediction, the calibrated prediction, and the measured profile.
func RenderColumns(labels []string, bds []*Breakdown) string {
	seen := make(map[[2]string]bool)
	var keys [][2]string
	for _, bd := range bds {
		for _, r := range bd.Rows() {
			k := [2]string{r.Site, r.Phase}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return phaseOrder(keys[i][1]) < phaseOrder(keys[j][1])
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-5s", "site", "phase")
	for _, label := range labels {
		fmt.Fprintf(&b, " %14s", label+"(ms)")
	}
	b.WriteByte('\n')
	cell := func(bd *Breakdown, k [2]string) string {
		if bd == nil {
			return "-"
		}
		if _, ok := bd.rows[k]; !ok {
			return "-"
		}
		return fmt.Sprintf("%.3f", bd.Get(k[0], k[1])/1e3)
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "%-8s %-5s", k[0], k[1])
		for _, bd := range bds {
			fmt.Fprintf(&b, " %14s", cell(bd, k))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s %-5s", "total", "")
	for _, bd := range bds {
		fmt.Fprintf(&b, " %14.3f", bd.Total()/1e3)
	}
	b.WriteByte('\n')
	return b.String()
}
