// Package cost defines the cost-event sink through which every layer
// reports the abstract operations of the paper's cost model (Table 1):
// bytes read from disk and CPU operations (comparisons, reference
// navigations, mapping-table lookups). Network transfer costs are charged by
// the fabric per message and do not pass through a Sink.
//
// Implementations either count the events (real executions) or additionally
// block the calling process for the corresponding virtual time (the
// discrete-event fabric).
package cost

import "sync/atomic"

// Sink receives cost events. Implementations may block the caller to model
// the time the operation takes.
type Sink interface {
	// DiskRead reports bytes read from the local disk.
	DiskRead(bytes int)
	// CPU reports abstract CPU operations (one comparison each).
	CPU(ops int)
}

// Counter is a Sink that tallies events. It is safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	diskBytes atomic.Int64
	cpuOps    atomic.Int64
}

var _ Sink = (*Counter)(nil)

// DiskRead implements Sink.
func (c *Counter) DiskRead(bytes int) { c.diskBytes.Add(int64(bytes)) }

// CPU implements Sink.
func (c *Counter) CPU(ops int) { c.cpuOps.Add(int64(ops)) }

// DiskBytes returns the accumulated disk bytes.
func (c *Counter) DiskBytes() int64 { return c.diskBytes.Load() }

// CPUOps returns the accumulated CPU operations.
func (c *Counter) CPUOps() int64 { return c.cpuOps.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.diskBytes.Store(0)
	c.cpuOps.Store(0)
}

// Discard is a Sink that ignores all events.
var Discard Sink = discard{}

type discard struct{}

func (discard) DiskRead(int) {}
func (discard) CPU(int)      {}
