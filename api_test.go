package hetfed_test

import (
	"fmt"
	"testing"

	hetfed "github.com/hetfed/hetfed"
)

// buildTinyFederation assembles a two-site federation through the public
// API only.
func buildTinyFederation(t *testing.T) (*hetfed.Global, map[hetfed.SiteID]*hetfed.Database, *hetfed.MappingTables) {
	t.Helper()

	east := hetfed.NewSchema("East")
	cls, err := hetfed.NewClass("Item", []hetfed.Attribute{
		hetfed.Prim("sku", hetfed.KindInt),
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("stock", hetfed.KindInt),
	}, "sku")
	if err != nil {
		t.Fatal(err)
	}
	if err := east.AddClass(cls); err != nil {
		t.Fatal(err)
	}

	west := hetfed.NewSchema("West")
	cls2, err := hetfed.NewClass("Item", []hetfed.Attribute{
		hetfed.Prim("sku", hetfed.KindInt),
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("price", hetfed.KindFloat),
	}, "sku")
	if err != nil {
		t.Fatal(err)
	}
	if err := west.AddClass(cls2); err != nil {
		t.Fatal(err)
	}

	schemas := map[hetfed.SiteID]*hetfed.Schema{"East": east, "West": west}
	global, err := hetfed.Integrate(schemas, []hetfed.Correspondence{
		{GlobalClass: "Item", Members: []hetfed.Constituent{
			{Site: "East", Class: "Item"}, {Site: "West", Class: "Item"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	dbEast, err := hetfed.NewDatabase(east)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*hetfed.Object{
		hetfed.NewObject("e1", "Item", map[string]hetfed.Value{
			"sku": hetfed.Int(1), "name": hetfed.Str("anvil"), "stock": hetfed.Int(3)}),
		hetfed.NewObject("e2", "Item", map[string]hetfed.Value{
			"sku": hetfed.Int(2), "name": hetfed.Str("rope"), "stock": hetfed.Int(0)}),
	} {
		if err := dbEast.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	dbWest, err := hetfed.NewDatabase(west)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*hetfed.Object{
		hetfed.NewObject("w1", "Item", map[string]hetfed.Value{
			"sku": hetfed.Int(1), "name": hetfed.Str("anvil"), "price": hetfed.Float(99.5)}),
		hetfed.NewObject("w3", "Item", map[string]hetfed.Value{
			"sku": hetfed.Int(3), "name": hetfed.Str("tent"), "price": hetfed.Float(45)}),
	} {
		if err := dbWest.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	dbs := map[hetfed.SiteID]*hetfed.Database{"East": dbEast, "West": dbWest}
	tables, err := hetfed.Identify(global, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetfed.ValidateMapping(global, dbs, tables); err != nil {
		t.Fatal(err)
	}
	return global, dbs, tables
}

// TestPublicAPIWorkflow drives the whole public surface: build, integrate,
// identify, query under every strategy on both runtimes, plan, and round-
// trip through the JSON document format.
func TestPublicAPIWorkflow(t *testing.T) {
	global, dbs, tables := buildTinyFederation(t)

	// Missing attributes fall out of the attribute union.
	item := global.Class("Item")
	if got := item.MissingAttrs("East"); len(got) != 1 || got[0] != "price" {
		t.Errorf("missing at East = %v", got)
	}

	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      global,
		Coordinator: "HQ",
		Databases:   dbs,
		Tables:      tables,
		Signatures:  hetfed.BuildSignatures(dbs),
	})
	if err != nil {
		t.Fatal(err)
	}

	q, err := hetfed.ParseQuery(`select name from Item where stock > 0 and price < 100`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hetfed.BindQuery(q, global)
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range hetfed.AllAlgorithms() {
		// Real runtime.
		ans, _, err := engine.Run(hetfed.NewRealRuntime(hetfed.DefaultRates()), alg, b)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// anvil: stock 3 at East, price 99.5 at West -> certain.
		// rope: stock 0 -> out. tent: stock unknown, price ok -> maybe.
		if len(ans.Certain) != 1 || !ans.Certain[0].Targets[0].Equal(hetfed.Str("anvil")) {
			t.Errorf("%v certain = %v", alg, ans.Certain)
		}
		if len(ans.Maybe) != 1 || !ans.Maybe[0].Targets[0].Equal(hetfed.Str("tent")) {
			t.Errorf("%v maybe = %v", alg, ans.Maybe)
		}
		// Simulated runtime agrees and reports timing.
		ans2, m, err := engine.Run(hetfed.NewSimRuntime(hetfed.DefaultRates(), engine.Sites()), alg, b)
		if err != nil {
			t.Fatalf("%v sim: %v", alg, err)
		}
		if len(ans2.Certain) != 1 || len(ans2.Maybe) != 1 {
			t.Errorf("%v sim disagreed", alg)
		}
		if m.ResponseMicros <= 0 {
			t.Errorf("%v: no simulated time", alg)
		}
	}

	// The planner produces estimates for the paper's strategies.
	cat := hetfed.BuildCatalog(global, dbs, tables)
	if got := hetfed.ChooseStrategy(cat, b, hetfed.DefaultRates()); got == 0 {
		t.Error("planner chose nothing")
	}
	if ests := hetfed.EstimateStrategies(cat, b, hetfed.DefaultRates()); len(ests) != 3 {
		t.Errorf("estimates = %v", ests)
	}

	// JSON round trip preserves answers.
	schemas := map[hetfed.SiteID]*hetfed.Schema{
		"East": dbs["East"].Schema(), "West": dbs["West"].Schema(),
	}
	data, err := hetfed.ExportFederation(schemas, global, dbs)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := hetfed.ParseFederation(data)
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global: fed.Global, Coordinator: "HQ", Databases: fed.Databases, Tables: fed.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := hetfed.BindQuery(q, fed.Global)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := engine2.Run(hetfed.NewRealRuntime(hetfed.DefaultRates()), hetfed.BL, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || len(ans.Maybe) != 1 {
		t.Errorf("round-tripped federation answered %v / %v", ans.Certain, ans.Maybe)
	}
}

// Example reproduces the paper's worked example through the public API.
func Example() {
	fx := hetfed.SchoolExample()
	q, err := hetfed.ParseQuery(hetfed.SchoolQ1)
	if err != nil {
		panic(err)
	}
	b, err := hetfed.BindQuery(q, fx.Global)
	if err != nil {
		panic(err)
	}
	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
	})
	if err != nil {
		panic(err)
	}
	ans, _, err := engine.Run(hetfed.NewRealRuntime(hetfed.DefaultRates()), hetfed.BL, b)
	if err != nil {
		panic(err)
	}
	for _, r := range ans.Certain {
		fmt.Println("certain:", r)
	}
	for _, r := range ans.Maybe {
		fmt.Println("maybe:  ", r)
	}
	// Output:
	// certain: gs4(Hedy, Kelly)
	// maybe:   gs2(Tony, Haley)
}
