// Signatures demonstrates the paper's Section 5 outlook: object signatures
// as an auxiliary structure that reduces the data transfer of the localized
// strategies. On an equality-predicate workload it runs BL/PL against their
// signature-assisted variants SBL/SPL and reports the saved network volume
// and check traffic — the answers are bit-for-bit identical.
//
//	go run ./examples/signatures
package main

import (
	"fmt"
	"log"
	"math/rand"

	hetfed "github.com/hetfed/hetfed"
)

func main() {
	ranges := hetfed.DefaultWorkloadRanges()
	ranges.NObjects = [2]int{1500, 2000}
	ranges.NClasses = [2]int{2, 3}
	ranges.NPredsPerClass = [2]int{1, 2}
	ranges.EqualityPreds = true
	ranges.Selectivity = 0.15

	rng := rand.New(rand.NewSource(7))
	w, err := hetfed.GenerateWorkload(ranges.Draw(rng), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d objects, query %s\n", w.Stats.Objects, w.Query)

	sigs := hetfed.BuildSignatures(w.Databases)
	fmt.Printf("signature index: %d signatures, %d bytes replicated per site\n\n",
		sigs.Len(), sigs.Bytes())

	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Signatures:  sigs,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(alg hetfed.Algorithm) (string, hetfed.Metrics) {
		ans, m, err := engine.Run(hetfed.NewSimRuntime(hetfed.DefaultRates(), engine.Sites()), alg, w.Bound)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%d certain + %d maybe", len(ans.Certain), len(ans.Maybe)), m
	}

	fmt.Printf("%-5s %-22s %12s %14s %10s\n", "alg", "answer", "total(ms)", "response(ms)", "net(KB)")
	var plain, assisted hetfed.Metrics
	for _, pair := range []struct {
		plain, sig hetfed.Algorithm
	}{{hetfed.BL, hetfed.SBL}, {hetfed.PL, hetfed.SPL}} {
		ansP, mP := run(pair.plain)
		ansS, mS := run(pair.sig)
		fmt.Printf("%-5v %-22s %12.1f %14.1f %10.1f\n", pair.plain, ansP,
			mP.TotalBusyMicros/1e3, mP.ResponseMicros/1e3, float64(mP.NetBytes)/1e3)
		fmt.Printf("%-5v %-22s %12.1f %14.1f %10.1f\n", pair.sig, ansS,
			mS.TotalBusyMicros/1e3, mS.ResponseMicros/1e3, float64(mS.NetBytes)/1e3)
		if ansP != ansS {
			log.Fatalf("%v and %v disagree — bug", pair.plain, pair.sig)
		}
		plain, assisted = mP, mS
	}
	saved := float64(plain.NetBytes-assisted.NetBytes) / float64(plain.NetBytes) * 100
	fmt.Printf("\nsignatures preserved every answer and cut PL's network volume by %.0f%%\n", saved)
}
