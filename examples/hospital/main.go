// Hospital builds a federation from scratch — two hospitals and an
// insurance registry holding overlapping patient populations — and walks
// the full pipeline a downstream user of this library follows:
//
//  1. declare component schemas,
//
//  2. integrate them into a global schema (missing attributes fall out of
//     the attribute union),
//
//  3. load objects, including original null values,
//
//  4. discover isomeric objects by entity key and build the GOid mapping
//     tables automatically (hetfed.Identify),
//
//  5. execute a query whose predicates hit missing data, and watch the
//     certification rule turn local maybe results into certain results or
//     eliminate them.
//
//     go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	hetfed "github.com/hetfed/hetfed"
)

func main() {
	// --- 1. Component schemas -------------------------------------------
	hospA := hetfed.NewSchema("HospA")
	hospA.MustAddClass(hetfed.MustClass("Patient", []hetfed.Attribute{
		hetfed.Prim("ssn", hetfed.KindInt),
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("age", hetfed.KindInt),
		hetfed.Complex("doctor", "Doctor"),
	}, "ssn"))
	hospA.MustAddClass(hetfed.MustClass("Doctor", []hetfed.Attribute{
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("specialty", hetfed.KindString),
	}, "name"))

	hospB := hetfed.NewSchema("HospB")
	hospB.MustAddClass(hetfed.MustClass("Patient", []hetfed.Attribute{
		hetfed.Prim("ssn", hetfed.KindInt),
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("bloodtype", hetfed.KindString),
		hetfed.Complex("doctor", "Doctor"),
	}, "ssn"))
	hospB.MustAddClass(hetfed.MustClass("Doctor", []hetfed.Attribute{
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("specialty", hetfed.KindString),
	}, "name"))

	registry := hetfed.NewSchema("Registry")
	registry.MustAddClass(hetfed.MustClass("Patient", []hetfed.Attribute{
		hetfed.Prim("ssn", hetfed.KindInt),
		hetfed.Prim("name", hetfed.KindString),
		hetfed.Prim("insurer", hetfed.KindString),
		hetfed.Prim("age", hetfed.KindInt),
	}, "ssn"))

	schemas := map[hetfed.SiteID]*hetfed.Schema{
		"HospA": hospA, "HospB": hospB, "Registry": registry,
	}

	// --- 2. Global schema by integration --------------------------------
	global, err := hetfed.Integrate(schemas, []hetfed.Correspondence{
		{GlobalClass: "Patient", Members: []hetfed.Constituent{
			{Site: "HospA", Class: "Patient"},
			{Site: "HospB", Class: "Patient"},
			{Site: "Registry", Class: "Patient"},
		}},
		{GlobalClass: "Doctor", Members: []hetfed.Constituent{
			{Site: "HospA", Class: "Doctor"},
			{Site: "HospB", Class: "Doctor"},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pat := global.Class("Patient")
	fmt.Printf("global Patient%v\n", pat.AttrNames())
	for _, site := range pat.Sites() {
		fmt.Printf("  missing at %-9s %v\n", site+":", pat.MissingAttrs(site))
	}

	// --- 3. Objects ------------------------------------------------------
	dbA := hetfed.MustNewDatabase(hospA)
	dbA.MustInsert(hetfed.NewObject("dA1", "Doctor", map[string]hetfed.Value{
		"name": hetfed.Str("Chen"), "specialty": hetfed.Str("cardiology"),
	}))
	dbA.MustInsert(hetfed.NewObject("dA2", "Doctor", map[string]hetfed.Value{
		"name": hetfed.Str("Silva"), // specialty unknown here (null)
	}))
	dbA.MustInsert(hetfed.NewObject("pA1", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1001), "name": hetfed.Str("Ines"), "age": hetfed.Int(62),
		"doctor": hetfed.Ref("dA1"),
	}))
	dbA.MustInsert(hetfed.NewObject("pA2", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1002), "name": hetfed.Str("Jonas"), "age": hetfed.Int(71),
		"doctor": hetfed.Ref("dA2"), // Silva's specialty must come from HospB
	}))
	dbA.MustInsert(hetfed.NewObject("pA3", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1003), "name": hetfed.Str("Mara"), "age": hetfed.Int(44),
		"doctor": hetfed.Ref("dA1"),
	}))

	dbB := hetfed.MustNewDatabase(hospB)
	dbB.MustInsert(hetfed.NewObject("dB1", "Doctor", map[string]hetfed.Value{
		"name": hetfed.Str("Silva"), "specialty": hetfed.Str("cardiology"),
	}))
	dbB.MustInsert(hetfed.NewObject("dB2", "Doctor", map[string]hetfed.Value{
		"name": hetfed.Str("Okafor"), "specialty": hetfed.Str("oncology"),
	}))
	// Jonas is also a HospB patient: the isomeric record.
	dbB.MustInsert(hetfed.NewObject("pB1", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1002), "name": hetfed.Str("Jonas"),
		"bloodtype": hetfed.Str("A+"), "doctor": hetfed.Ref("dB1"),
	}))
	// Priya exists only at HospB, which has no age attribute at all.
	dbB.MustInsert(hetfed.NewObject("pB2", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1004), "name": hetfed.Str("Priya"),
		"bloodtype": hetfed.Str("O-"), "doctor": hetfed.Ref("dB1"),
	}))

	dbR := hetfed.MustNewDatabase(registry)
	// The registry knows Priya's age — her assistant object for the age
	// predicate lives here.
	dbR.MustInsert(hetfed.NewObject("r1", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1004), "name": hetfed.Str("Priya"),
		"insurer": hetfed.Str("Acme"), "age": hetfed.Int(58),
	}))
	dbR.MustInsert(hetfed.NewObject("r2", "Patient", map[string]hetfed.Value{
		"ssn": hetfed.Int(1001), "name": hetfed.Str("Ines"),
		"insurer": hetfed.Str("Umbrella"), "age": hetfed.Int(62),
	}))

	dbs := map[hetfed.SiteID]*hetfed.Database{
		"HospA": dbA, "HospB": dbB, "Registry": dbR,
	}

	// --- 4. Isomerism identification ------------------------------------
	tables, err := hetfed.Identify(global, dbs)
	if err != nil {
		log.Fatal(err)
	}
	if err := hetfed.ValidateMapping(global, dbs, tables); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nisomeric entities per class: %v\n", hetfed.CountIsomeric(tables))

	// --- 5. Query with missing data --------------------------------------
	src := `select name, doctor.name from Patient ` +
		`where age > 50 and doctor.specialty = "cardiology"`
	q := mustParse(src)
	b, err := hetfed.BindQuery(q, global)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %s\n", q)

	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      global,
		Coordinator: "G",
		Databases:   dbs,
		Tables:      tables,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range hetfed.Algorithms() {
		ans, _, err := engine.Run(hetfed.NewRealRuntime(hetfed.DefaultRates()), alg, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v:\n", alg)
		for _, r := range ans.Certain {
			fmt.Printf("  certain: %s\n", r)
		}
		for _, r := range ans.Maybe {
			fmt.Printf("  maybe:   %s\n", r)
		}
	}

	fmt.Println(`
why:
  Ines  (62, Dr. Chen, cardiology)  -> certain at HospA alone.
  Jonas (71, Dr. Silva)             -> maybe at HospA (Silva's specialty is
          null there), but Silva's isomeric record at HospB says cardiology:
          the assistant check certifies Jonas into a certain result.
  Priya (HospB only, no age)        -> maybe at HospB, but her registry
          record says age 58: certified certain through the root merge.
  Mara  (44)                        -> eliminated by the age predicate.`)
}

// mustParse keeps the example terse.
func mustParse(src string) *hetfed.Query {
	q, err := hetfed.ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}
