// Quickstart reproduces the paper's worked example end to end: the three
// school databases of Figure 4, the integrated global schema of Figure 2,
// and query Q1 executed under the centralized (CA), basic localized (BL)
// and parallel localized (PL) strategies.
//
// All three strategies answer with the certain result (Hedy, Kelly) and the
// maybe result (Tony, Haley) — the maybe arises because Tony's address and
// his advisor Haley's speciality are missing everywhere in the federation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hetfed "github.com/hetfed/hetfed"
)

func main() {
	// 1. Assemble the federation: component schemas and instances (Figures
	// 1 and 4), the integrated global schema (Figure 2), and the GOid
	// mapping tables relating isomeric objects (Figure 5).
	fx := hetfed.SchoolExample()

	fmt.Println("global schema:")
	for _, name := range fx.Global.ClassNames() {
		gc := fx.Global.Class(name)
		fmt.Printf("  %s%v\n", name, gc.AttrNames())
		for _, site := range gc.Sites() {
			if miss := gc.MissingAttrs(site); len(miss) > 0 {
				fmt.Printf("    missing at %s: %v\n", site, miss)
			}
		}
	}

	// 2. Parse and bind the paper's query Q1 against the global schema.
	q := mustParse(hetfed.SchoolQ1)
	b, err := hetfed.BindQuery(q, fx.Global)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery Q1: %s\n", q)

	// The localized strategies derive one local query per site holding a
	// constituent of the range class (the paper's Q1' and Q1'').
	for _, lq := range b.LocalizeAll() {
		fmt.Printf("  local query: %s\n", lq)
	}

	// 3. Execute under every strategy, on the simulated fabric so the cost
	// model reports total execution time and response time.
	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      fx.Global,
		Coordinator: "G",
		Databases:   fx.Databases,
		Tables:      fx.Mapping,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, alg := range hetfed.Algorithms() {
		ans, m, err := engine.Run(hetfed.NewSimRuntime(hetfed.DefaultRates(), engine.Sites()), alg, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v:\n", alg)
		for _, r := range ans.Certain {
			fmt.Printf("  certain: %s\n", r)
		}
		for _, r := range ans.Maybe {
			fmt.Printf("  maybe:   %s\n", r)
		}
		fmt.Printf("  response %.2f ms, total execution %.2f ms, network %d bytes\n",
			m.ResponseMicros/1e3, m.TotalBusyMicros/1e3, m.NetBytes)
	}
}

// mustParse keeps the example terse.
func mustParse(src string) *hetfed.Query {
	q, err := hetfed.ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}
