// Adaptive demonstrates cost-based strategy selection: the planner builds
// catalog statistics for a generated federation, predicts each strategy's
// response time for queries of different shapes, picks one, and the
// simulator then measures all three so the prediction quality is visible.
//
// The shapes mirror the paper's findings: selective predicates favor BL
// strongly; queries whose predicates are mostly missing locally narrow the
// gap; CA is the fallback when local evaluation cannot eliminate anything.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	hetfed "github.com/hetfed/hetfed"
)

func main() {
	ranges := hetfed.DefaultWorkloadRanges()
	ranges.NClasses = [2]int{2, 2}
	ranges.NPredsPerClass = [2]int{2, 2}
	ranges.NObjects = [2]int{1200, 1500}

	rng := rand.New(rand.NewSource(11))
	w, err := hetfed.GenerateWorkload(ranges.Draw(rng), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: %d objects across %d sites\n\n", w.Stats.Objects, 3)

	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat := hetfed.BuildCatalog(w.Global, w.Databases, w.Tables)

	queries := []struct {
		name string
		src  string
	}{
		{"selective local", `select t0 from C1 where p0 < 100 and p1 < 100`},
		{"broad local", `select t0 from C1 where p0 < 900 and p1 < 900`},
		{"nested chain", `select t0 from C1 where p0 < 400 and next.p0 < 400`},
		{"no elimination", `select t0 from C1 where p0 >= 0`},
	}

	for _, qc := range queries {
		q, err := hetfed.ParseQuery(qc.src)
		if err != nil {
			log.Fatal(err)
		}
		b, err := hetfed.BindQuery(q, w.Global)
		if err != nil {
			log.Fatal(err)
		}

		chosen := hetfed.ChooseStrategy(cat, b, hetfed.DefaultRates())
		fmt.Printf("%s: %s\n", qc.name, qc.src)
		fmt.Printf("  planner chose %v\n", chosen)

		ests := hetfed.EstimateStrategies(cat, b, hetfed.DefaultRates())
		best := hetfed.Algorithm(0)
		actual := map[hetfed.Algorithm]float64{}
		for _, alg := range hetfed.Algorithms() {
			rt := hetfed.NewSimRuntime(hetfed.DefaultRates(), engine.Sites())
			_, m, err := engine.Run(rt, alg, b)
			if err != nil {
				log.Fatal(err)
			}
			actual[alg] = m.ResponseMicros
			if best == 0 || m.ResponseMicros < actual[best] {
				best = alg
			}
		}
		for _, est := range ests {
			marker := " "
			if est.Alg == chosen {
				marker = "*"
			}
			fmt.Printf("  %s %-3v predicted %8.1f ms   measured %8.1f ms\n",
				marker, est.Alg, est.ResponseMicros/1e3, actual[est.Alg]/1e3)
		}
		if chosen == best {
			fmt.Printf("  -> optimal (actual best: %v)\n\n", best)
		} else {
			regret := actual[chosen]/actual[best] - 1
			fmt.Printf("  -> actual best was %v (regret %.0f%%)\n\n", best, 100*regret)
		}
	}
}
