// University executes the strategies on a realistically sized generated
// federation: four component databases of a university system (students →
// advisors → departments), ~2000 objects per constituent class, with
// missing attributes, original nulls and isomeric objects per the paper's
// Table 2 model. It prints the answer-set agreement across strategies and
// the simulated timing comparison — a miniature of Figure 9's message.
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"math/rand"

	hetfed "github.com/hetfed/hetfed"
)

func main() {
	ranges := hetfed.DefaultWorkloadRanges()
	ranges.NDB = 4
	ranges.NClasses = [2]int{3, 3}       // students → advisors → departments
	ranges.NPredsPerClass = [2]int{1, 2} // one or two predicates per class
	ranges.NObjects = [2]int{1800, 2200}

	rng := rand.New(rand.NewSource(42))
	params := ranges.Draw(rng)
	w, err := hetfed.GenerateWorkload(params, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation: %d sites, %d stored objects, %d isomeric entities\n",
		params.NDB, w.Stats.Objects, w.Stats.IsomericEntities)
	fmt.Printf("query: %s\n\n", w.Query)

	engine, err := hetfed.NewEngine(hetfed.EngineConfig{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
	})
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		alg      hetfed.Algorithm
		certain  int
		maybe    int
		response float64
		total    float64
		netKB    float64
	}
	var outcomes []outcome
	for _, alg := range hetfed.Algorithms() {
		ans, m, err := engine.Run(hetfed.NewSimRuntime(hetfed.DefaultRates(), engine.Sites()), alg, w.Bound)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{
			alg:      alg,
			certain:  len(ans.Certain),
			maybe:    len(ans.Maybe),
			response: m.ResponseMicros / 1e3,
			total:    m.TotalBusyMicros / 1e3,
			netKB:    float64(m.NetBytes) / 1e3,
		})
	}

	fmt.Printf("%-4s %9s %7s %14s %12s %10s\n",
		"alg", "certain", "maybe", "response(ms)", "total(ms)", "net(KB)")
	for _, o := range outcomes {
		fmt.Printf("%-4v %9d %7d %14.1f %12.1f %10.1f\n",
			o.alg, o.certain, o.maybe, o.response, o.total, o.netKB)
	}

	// The strategies must agree on the answer sets.
	for _, o := range outcomes[1:] {
		if o.certain != outcomes[0].certain || o.maybe != outcomes[0].maybe {
			fmt.Println("\nWARNING: strategies disagree — this would be a bug")
			return
		}
	}
	fmt.Println("\nall strategies agree on the certain and maybe result sets")
}
