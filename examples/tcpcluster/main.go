// Tcpcluster deploys the school federation as three real TCP servers on
// loopback ports, then acts as the global processing site: it sends local
// queries to the sites, the sites dispatch assistant-object checks to each
// other over their own connections, and the coordinator certifies the
// collected results. The same engine code that runs inside the simulator
// here runs across actual sockets.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"

	hetfed "github.com/hetfed/hetfed"
	"github.com/hetfed/hetfed/internal/school"
)

func main() {
	fx := hetfed.SchoolExample()
	sigs := hetfed.BuildSignatures(fx.Databases)

	// Start one server per component database on an ephemeral port.
	servers := make([]*hetfed.SiteServer, 0, len(fx.Databases))
	addrs := make(map[hetfed.SiteID]string, len(fx.Databases))
	for _, site := range school.Sites {
		srv, err := hetfed.NewSiteServer(hetfed.SiteServerConfig{
			DB:         fx.Databases[site],
			Global:     fx.Global,
			Tables:     fx.Mapping,
			Signatures: sigs,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs[site] = srv.Addr()
		fmt.Printf("site %s listening on %s\n", site, srv.Addr())
	}

	for _, srv := range servers {
		srv.SetPeers(addrs)
	}

	coord := &hetfed.RemoteCoordinator{
		ID:     "G",
		Global: fx.Global,
		Tables: fx.Mapping,
		Sites:  addrs,
	}
	if err := coord.Ping(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery: %s\n", hetfed.SchoolQ1)
	for _, alg := range hetfed.AllAlgorithms() {
		ans, elapsed, err := coord.Query(hetfed.SchoolQ1, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v over TCP (%.2f ms):\n", alg, float64(elapsed.Microseconds())/1e3)
		for _, r := range ans.Certain {
			fmt.Printf("  certain: %s\n", r)
		}
		for _, r := range ans.Maybe {
			fmt.Printf("  maybe:   %s\n", r)
		}
	}

	// The federation is writable: the coordinator is the mapping authority,
	// inserts go to the owning site, and the mapping-table replicas are
	// maintained through broadcast deltas. Insert Haley's missing DB2
	// record — Tony's advisor.speciality predicate then certifies through
	// the new assistant object.
	matcher := hetfed.NewMatcher(fx.Global)
	if err := matcher.Adopt(fx.Databases, coord.Tables.Clone()); err != nil {
		log.Fatal(err)
	}
	coord.Matcher = matcher
	coord.Tables = matcher.Tables()

	goid, err := coord.Insert("DB2", hetfed.NewObject("t9'", "Teacher", map[string]hetfed.Value{
		"name": hetfed.Str("Haley"), "speciality": hetfed.Str("database"),
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted Haley's record at DB2 (matched entity %s)\n", goid)

	ans, _, err := coord.Query(hetfed.SchoolQ1, hetfed.BL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBL after the insert:")
	for _, r := range ans.Certain {
		fmt.Printf("  certain: %s\n", r)
	}
	for _, r := range ans.Maybe {
		fmt.Printf("  maybe:   %s (unknown predicates: %v — only the address remains)\n", r, r.Unknown)
	}
}
