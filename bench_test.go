// Benchmarks regenerating the paper's evaluation, one per table/figure:
//
//	BenchmarkFigure9   — total/response time vs. objects per constituent class
//	BenchmarkFigure10  — vs. number of component databases
//	BenchmarkFigure11  — vs. local-predicate selectivity
//	BenchmarkTable1T2  — the workload generator itself (Tables 1 and 2)
//	BenchmarkSignatureAblation — E7, the Section 5 signature extension
//	BenchmarkNetworkRates      — E8, sensitivity to T_net
//
// Each iteration executes one full strategy run over a generated Table 2
// federation inside the discrete-event simulator. The simulated response
// and total execution times are attached as custom metrics (resp_ms,
// total_ms), so `go test -bench` output directly reports the paper's two
// y-axes alongside wall-clock cost. Micro-benchmarks for the substrates
// (parser, predicate evaluation, DES kernel, isomerism identification,
// outerjoin materialization) follow.
package hetfed_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/hetfed/hetfed/internal/des"
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/workload"
)

// benchWorkload generates one deterministic Table 2 sample.
func benchWorkload(b *testing.B, mutate func(*workload.Ranges)) *workload.Workload {
	b.Helper()
	ranges := workload.DefaultRanges()
	ranges.NObjects = [2]int{900, 1100} // keep per-iteration cost tractable
	if mutate != nil {
		mutate(&ranges)
	}
	rng := rand.New(rand.NewSource(1))
	w, err := workload.Generate(ranges.Draw(rng), rng)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchEngine(b *testing.B, w *workload.Workload, sigs *signature.Index) *exec.Engine {
	b.Helper()
	engine, err := exec.New(exec.Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Signatures:  sigs,
	})
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// runStrategy executes the strategy b.N times in the simulator and reports
// the paper's metrics.
func runStrategy(b *testing.B, engine *exec.Engine, w *workload.Workload, alg exec.Algorithm) {
	b.Helper()
	var last fabric.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := fabric.NewSim(fabric.DefaultRates(), engine.Sites())
		_, m, err := engine.Run(rt, alg, w.Bound)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(last.ResponseMicros/1e3, "resp_ms")
	b.ReportMetric(last.TotalBusyMicros/1e3, "total_ms")
	b.ReportMetric(float64(last.NetBytes)/1e3, "net_kB")
}

// BenchmarkFigure9 regenerates Figure 9's points: every strategy at small
// and large extents.
func BenchmarkFigure9(b *testing.B) {
	for _, objects := range []int{500, 2000} {
		objects := objects
		w := benchWorkload(b, func(r *workload.Ranges) {
			r.NObjects = [2]int{objects - objects/10, objects + objects/10}
		})
		for _, alg := range exec.Algorithms() {
			engine := benchEngine(b, w, nil)
			b.Run(fmt.Sprintf("%v/objects=%d", alg, objects), func(b *testing.B) {
				runStrategy(b, engine, w, alg)
			})
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10's points: every strategy at few
// and many component databases.
func BenchmarkFigure10(b *testing.B) {
	for _, ndb := range []int{2, 6} {
		ndb := ndb
		w := benchWorkload(b, func(r *workload.Ranges) { r.NDB = ndb })
		for _, alg := range exec.Algorithms() {
			engine := benchEngine(b, w, nil)
			b.Run(fmt.Sprintf("%v/dbs=%d", alg, ndb), func(b *testing.B) {
				runStrategy(b, engine, w, alg)
			})
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11's points: every strategy at low
// and high local-predicate selectivity.
func BenchmarkFigure11(b *testing.B) {
	for _, sel := range []float64{0.2, 0.8} {
		sel := sel
		w := benchWorkload(b, func(r *workload.Ranges) {
			r.Selectivity = sel
			r.NObjects = [2]int{1000, 1100} // the paper's Figure 11 setting, scaled
		})
		for _, alg := range exec.Algorithms() {
			engine := benchEngine(b, w, nil)
			b.Run(fmt.Sprintf("%v/sel=%.1f", alg, sel), func(b *testing.B) {
				runStrategy(b, engine, w, alg)
			})
		}
	}
}

// BenchmarkTable1T2 measures the workload generator (the machinery behind
// Tables 1 and 2): one full federation per iteration.
func BenchmarkTable1T2(b *testing.B) {
	ranges := workload.DefaultRanges()
	ranges.NObjects = [2]int{900, 1100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := workload.Generate(ranges.Draw(rng), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatureAblation compares the localized strategies with and
// without the signature index on an equality-predicate workload (E7).
func BenchmarkSignatureAblation(b *testing.B) {
	w := benchWorkload(b, func(r *workload.Ranges) { r.EqualityPreds = true })
	sigs := signature.Build(w.Databases)
	for _, alg := range []exec.Algorithm{exec.BL, exec.SBL, exec.PL, exec.SPL} {
		engine := benchEngine(b, w, sigs)
		b.Run(alg.String(), func(b *testing.B) {
			runStrategy(b, engine, w, alg)
		})
	}
}

// BenchmarkNetworkRates measures strategy sensitivity to the network rate
// (E8): the same workload under a fast and a slow medium.
func BenchmarkNetworkRates(b *testing.B) {
	w := benchWorkload(b, nil)
	for _, netRate := range []float64{2, 32} {
		netRate := netRate
		for _, alg := range exec.Algorithms() {
			engine := benchEngine(b, w, nil)
			b.Run(fmt.Sprintf("%v/tnet=%g", alg, netRate), func(b *testing.B) {
				rates := fabric.DefaultRates()
				rates.NetPerByte = netRate
				var last fabric.Metrics
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rt := fabric.NewSim(rates, engine.Sites())
					_, m, err := engine.Run(rt, alg, w.Bound)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.StopTimer()
				b.ReportMetric(last.ResponseMicros/1e3, "resp_ms")
				b.ReportMetric(last.TotalBusyMicros/1e3, "total_ms")
			})
		}
	}
}

// instrumentedEngine builds an engine with the full observability layer
// (span tracer + metrics registry) attached.
func instrumentedEngine(tb testing.TB, w *workload.Workload) *exec.Engine {
	tb.Helper()
	tr := &trace.Tracer{}
	tr.SetLimit(4096)
	engine, err := exec.New(exec.Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Tracer:      tr,
		Metrics:     metrics.New(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return engine
}

// BenchmarkTraceOverhead measures the cost of the observability layer on a
// simulated BL execution: the same workload with instrumentation off and
// fully on (spans + per-site metrics). The documented budget is 1.5×;
// measured ratios sit well below it because the DES channel handshakes
// dominate the per-span mutex and per-metric atomic work. See
// EXPERIMENTS.md (E11) and TestTraceOverheadBudget.
func BenchmarkTraceOverhead(b *testing.B) {
	w := benchWorkload(b, nil)
	b.Run("off", func(b *testing.B) {
		runStrategy(b, benchEngine(b, w, nil), w, exec.BL)
	})
	b.Run("on", func(b *testing.B) {
		runStrategy(b, instrumentedEngine(b, w), w, exec.BL)
	})
}

// TestTraceOverheadBudget enforces the observability overhead budget: a
// fully instrumented simulated BL run must cost at most 2× an
// uninstrumented one (the documented target is 1.5×; the hard test limit is
// looser to absorb scheduler noise on shared machines).
func TestTraceOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	w := benchWorkloadT(t)
	runOnce := func(engine *exec.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := fabric.NewSim(fabric.DefaultRates(), engine.Sites())
				if _, _, err := engine.Run(rt, exec.BL, w.Bound); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	off := testing.Benchmark(runOnce(benchEngineT(t, w)))
	on := testing.Benchmark(runOnce(instrumentedEngine(t, w)))
	if off.NsPerOp() == 0 {
		t.Skip("baseline too fast to time")
	}
	ratio := float64(on.NsPerOp()) / float64(off.NsPerOp())
	t.Logf("instrumented/uninstrumented = %.3f (on %v, off %v)", ratio, on, off)
	if ratio > 2.0 {
		t.Errorf("observability overhead ratio %.2f exceeds the 2.0 budget", ratio)
	}
}

// profiledEngine builds an engine with everything the serving path can
// attach: span tracer, metrics registry (with exemplars), and the flight
// recorder assembling a trace.Profile per query.
func profiledEngine(tb testing.TB, w *workload.Workload) *exec.Engine {
	tb.Helper()
	tr := &trace.Tracer{}
	tr.SetLimit(4096)
	reg := metrics.New()
	engine, err := exec.New(exec.Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
		Tracer:      tr,
		Metrics:     reg,
		Recorder:    obs.NewRecorder(obs.RecorderConfig{Site: "G", Metrics: reg}),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return engine
}

// BenchmarkProfileOverhead (E14) extends E11's ladder by one rung: spans +
// metrics + per-query profile assembly and flight-recorder admission. The
// profiled rung must stay within E11's observability budget — BuildProfile
// is one pass over the query's spans, and Record is a ring append.
func BenchmarkProfileOverhead(b *testing.B) {
	w := benchWorkload(b, nil)
	b.Run("off", func(b *testing.B) {
		runStrategy(b, benchEngine(b, w, nil), w, exec.BL)
	})
	b.Run("traced", func(b *testing.B) {
		runStrategy(b, instrumentedEngine(b, w), w, exec.BL)
	})
	b.Run("profiled", func(b *testing.B) {
		runStrategy(b, profiledEngine(b, w), w, exec.BL)
	})
}

// TestProfileOverheadBudget enforces E14's budget: a run with profile
// assembly and flight-recorder admission on top of full instrumentation must
// stay within the same 2× ceiling E11 grants the observability layer.
func TestProfileOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	w := benchWorkloadT(t)
	runOnce := func(engine *exec.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := fabric.NewSim(fabric.DefaultRates(), engine.Sites())
				if _, _, err := engine.Run(rt, exec.BL, w.Bound); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	off := testing.Benchmark(runOnce(benchEngineT(t, w)))
	profiled := testing.Benchmark(runOnce(profiledEngine(t, w)))
	if off.NsPerOp() == 0 {
		t.Skip("baseline too fast to time")
	}
	ratio := float64(profiled.NsPerOp()) / float64(off.NsPerOp())
	t.Logf("profiled/uninstrumented = %.3f (profiled %v, off %v)", ratio, profiled, off)
	if ratio > 2.0 {
		t.Errorf("profile overhead ratio %.2f exceeds the 2.0 budget", ratio)
	}
}

// benchWorkloadT and benchEngineT are the *testing.T twins of the benchmark
// helpers.
func benchWorkloadT(t *testing.T) *workload.Workload {
	t.Helper()
	ranges := workload.DefaultRanges()
	ranges.NObjects = [2]int{400, 500} // small: two timed runs in one test
	rng := rand.New(rand.NewSource(1))
	w, err := workload.Generate(ranges.Draw(rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func benchEngineT(t *testing.T, w *workload.Workload) *exec.Engine {
	t.Helper()
	engine, err := exec.New(exec.Config{
		Global:      w.Global,
		Coordinator: "G",
		Databases:   w.Databases,
		Tables:      w.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// BenchmarkParse measures the SQL/X parser on the paper's Q1.
func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(school.Q1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalEval measures one site's full local-query evaluation (scan,
// three-valued predicates, unsolved-item extraction) on a generated extent.
func BenchmarkLocalEval(b *testing.B) {
	w := benchWorkload(b, nil)
	site := federation.NewSite(w.Databases["DB1"], w.Global, w.Tables)
	rt := fabric.NewReal(fabric.DefaultRates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run("bench", func(p fabric.Proc) {
			site.EvalLocalBasic(p, w.Bound, nil)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterialize measures the centralized approach's outerjoin
// integration over GOids.
func BenchmarkMaterialize(b *testing.B) {
	w := benchWorkload(b, nil)
	coord := federation.NewCoordinator("G", w.Global, w.Tables)
	var replies []federation.RetrieveReply
	rt := fabric.NewReal(fabric.DefaultRates())
	if _, err := rt.Run("retrieve", func(p fabric.Proc) {
		for _, id := range w.Bound.InvolvedSites() {
			site := federation.NewSite(w.Databases[id], w.Global, w.Tables)
			replies = append(replies, site.Retrieve(p, w.Bound))
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run("materialize", func(p fabric.Proc) {
			coord.Materialize(p, w.Bound, replies)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIsomerIdentify measures key-based isomerism identification.
func BenchmarkIsomerIdentify(b *testing.B) {
	w := benchWorkload(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isomer.Identify(w.Global, w.Databases); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESKernel measures the discrete-event kernel: fan-out of 1000
// processes contending on shared resources.
func BenchmarkDESKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := des.New()
		cpu := sim.NewResource("cpu")
		net := sim.NewResource("net")
		sim.Spawn("root", func(p *des.Proc) {
			children := make([]*des.Proc, 0, 1000)
			for j := 0; j < 1000; j++ {
				children = append(children, p.Spawn("w", func(c *des.Proc) {
					c.Use(cpu, 1)
					c.Use(net, 0.5)
				}))
			}
			p.Join(children...)
		})
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatureBuild measures signature-index construction.
func BenchmarkSignatureBuild(b *testing.B) {
	w := benchWorkload(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.Build(w.Databases)
	}
}

// BenchmarkIndexAblation compares scan-based and index-assisted BL (E10).
func BenchmarkIndexAblation(b *testing.B) {
	w := benchWorkload(b, func(r *workload.Ranges) { r.Selectivity = 0.1 })
	for _, db := range w.Databases {
		for _, a := range db.Schema().Class("C1").Attrs {
			if !a.IsComplex() && !a.MultiValued && a.Name[0] == 'p' {
				if _, err := db.CreateIndex("C1", a.Name); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for _, useIdx := range []bool{false, true} {
		name := "scan"
		if useIdx {
			name = "indexed"
		}
		engine, err := exec.New(exec.Config{
			Global:      w.Global,
			Coordinator: "G",
			Databases:   w.Databases,
			Tables:      w.Tables,
			UseIndexes:  useIdx,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			runStrategy(b, engine, w, exec.BL)
		})
	}
}
