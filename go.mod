module github.com/hetfed/hetfed

go 1.22
