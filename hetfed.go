// Package hetfed reproduces "Query Execution Strategies for Missing Data in
// Distributed Heterogeneous Object Databases" (Koh and Chen, ICDCS 1996): a
// federation of heterogeneous object databases whose global queries return
// certain and maybe results under missing data, executed by the paper's
// centralized (CA), basic localized (BL) and parallel localized (PL)
// strategies — plus its Section 5 extensions (object signatures,
// disjunctive predicates, multi-valued attributes) and the systems around
// them (cost-based planning, secondary indexes, TCP deployment, JSON
// federation documents).
//
// This file is the public API: a documented facade over the packages under
// internal/, organized by the workflow a downstream user follows — model a
// federation, integrate its schemas, identify isomeric objects, then
// execute global queries, for real or inside the discrete-event simulator.
// The worked example (examples/quickstart) uses exactly this surface.
package hetfed

import (
	"github.com/hetfed/hetfed/internal/exec"
	"github.com/hetfed/hetfed/internal/fabric"
	"github.com/hetfed/hetfed/internal/federation"
	"github.com/hetfed/hetfed/internal/fedfile"
	"github.com/hetfed/hetfed/internal/gmap"
	"github.com/hetfed/hetfed/internal/isomer"
	"github.com/hetfed/hetfed/internal/metrics"
	"github.com/hetfed/hetfed/internal/object"
	"github.com/hetfed/hetfed/internal/obs"
	"github.com/hetfed/hetfed/internal/planner"
	"github.com/hetfed/hetfed/internal/query"
	"github.com/hetfed/hetfed/internal/remote"
	"github.com/hetfed/hetfed/internal/schema"
	"github.com/hetfed/hetfed/internal/school"
	"github.com/hetfed/hetfed/internal/signature"
	"github.com/hetfed/hetfed/internal/sim"
	"github.com/hetfed/hetfed/internal/store"
	"github.com/hetfed/hetfed/internal/trace"
	"github.com/hetfed/hetfed/internal/tvl"
	"github.com/hetfed/hetfed/internal/workload"
)

//
// Object model — typed values, local/global identifiers, stored objects.
//

type (
	// Value is an immutable attribute value; build one with Int, Float,
	// Str, Bool, Ref, GRef, List or Null.
	Value = object.Value
	// Kind enumerates the value kinds.
	Kind = object.Kind
	// Object is a stored object: an LOid plus named attribute values.
	Object = object.Object
	// LOid identifies an object within one component database.
	LOid = object.LOid
	// GOid identifies a real-world entity across the federation; isomeric
	// objects share one.
	GOid = object.GOid
	// SiteID names a component database or the global processing site.
	SiteID = object.SiteID
)

// Value kinds.
const (
	KindNull   = object.KindNull
	KindInt    = object.KindInt
	KindFloat  = object.KindFloat
	KindString = object.KindString
	KindBool   = object.KindBool
	KindRef    = object.KindRef
	KindGRef   = object.KindGRef
	KindList   = object.KindList
)

// Value constructors (see the corresponding internal/object functions).
var (
	Null  = object.Null
	Int   = object.Int
	Float = object.Float
	Str   = object.Str
	Bool  = object.Bool
	Ref   = object.Ref
	GRef  = object.GRef
	List  = object.List
)

// NewObject builds a stored object; null and zero values are normalized to
// missing data.
func NewObject(id LOid, class string, attrs map[string]Value) *Object {
	return object.New(id, class, attrs)
}

//
// Three-valued logic — the certain/maybe algebra.
//

type (
	// Truth is a Kleene three-valued truth value.
	Truth = tvl.Truth
)

// Truth values.
const (
	False   = tvl.False
	Unknown = tvl.Unknown
	True    = tvl.True
)

//
// Schemas — component classes and global-schema integration.
//

type (
	// Attribute describes one class attribute (primitive or complex).
	Attribute = schema.Attribute
	// Class is one class of a component schema.
	Class = schema.Class
	// Schema is one component database's schema.
	Schema = schema.Schema
	// Constituent names a constituent class of a global class.
	Constituent = schema.Constituent
	// Correspondence declares which constituent classes integrate into one
	// global class.
	Correspondence = schema.Correspondence
	// Global is the integrated global schema.
	Global = schema.Global
	// GlobalClass is one class of the global schema, with per-site
	// missing-attribute sets.
	GlobalClass = schema.GlobalClass
)

// Schema construction helpers.
var (
	// Prim returns a primitive attribute descriptor.
	Prim = schema.Prim
	// Complex returns a complex (class-valued) attribute descriptor.
	Complex = schema.Complex
	// NewClass builds a class from attributes plus an optional entity key.
	NewClass = schema.NewClass
	// MustClass is NewClass for fixtures; it panics on error.
	MustClass = schema.MustClass
	// NewSchema returns an empty component schema for a site.
	NewSchema = schema.NewSchema
)

// Integrate constructs the global schema from component schemas and class
// correspondences: each global class is the attribute union of its
// constituents, and the attributes a constituent lacks become its missing
// attributes.
func Integrate(schemas map[SiteID]*Schema, corrs []Correspondence) (*Global, error) {
	return schema.Integrate(schemas, corrs)
}

//
// Storage — per-site object stores.
//

type (
	// Database is one component database: class extents indexed by LOid.
	Database = store.Database
)

// Database constructors.
var (
	// NewDatabase returns an empty database over a validated schema.
	NewDatabase = store.NewDatabase
	// MustNewDatabase is NewDatabase for fixtures; it panics on error.
	MustNewDatabase = store.MustNewDatabase
)

//
// Isomerism — GOid mapping tables relating objects that represent the same
// real-world entity.
//

type (
	// MappingTables groups the per-class GOid mapping tables.
	MappingTables = gmap.Tables
	// MappingTable is one global class's GOid mapping table.
	MappingTable = gmap.Table
	// Location is one stored isomeric object: a site plus its LOid.
	Location = gmap.Location
	// Matcher maintains the entity partition incrementally (live inserts).
	Matcher = isomer.Matcher
)

// Isomerism helpers.
var (
	// Identify discovers isomeric objects by entity-key equality and
	// builds the mapping tables.
	Identify = isomer.Identify
	// NewMatcher returns an empty incremental matcher.
	NewMatcher = isomer.NewMatcher
	// ValidateMapping cross-checks mapping tables against the databases.
	ValidateMapping = isomer.Validate
	// CountIsomeric reports entities stored at more than one site.
	CountIsomeric = isomer.CountIsomeric
)

//
// Queries — the SQL/X-like global query language.
//

type (
	// Query is a parsed global query (single range class, nested
	// predicates in disjunctive normal form).
	Query = query.Query
	// Bound is a query validated against the global schema.
	Bound = query.Bound
	// Predicate is one nested predicate.
	Predicate = query.Predicate
	// Path is a path expression through the composition hierarchy.
	Path = query.Path
	// LocalQuery is a per-site derivation of a global query (the paper's
	// Q1 → Q1'/Q1'' step).
	LocalQuery = query.LocalQuery
)

// Query helpers.
var (
	// ParseQuery parses the SQL/X-like surface syntax.
	ParseQuery = query.Parse
	// BindQuery validates a query against the global schema.
	BindQuery = query.Bind
)

//
// Execution — the paper's strategies over real or simulated runtimes.
//

type (
	// Algorithm selects an execution strategy.
	Algorithm = exec.Algorithm
	// Engine executes global queries against a federation.
	Engine = exec.Engine
	// EngineConfig assembles an engine.
	EngineConfig = exec.Config
	// Answer is a query result: certain rows plus maybe rows.
	Answer = federation.Answer
	// ResultRow is one entity in an answer, with its merged target values
	// and — for maybe rows — the indexes of its unresolved predicates.
	ResultRow = federation.ResultRow
	// Runtime executes a strategy: NewRealRuntime or NewSimRuntime.
	Runtime = fabric.Runtime
	// Metrics reports an execution's response time, total modeled work and
	// event counts.
	Metrics = fabric.Metrics
	// Rates are the Table 1 cost parameters.
	Rates = fabric.Rates
	// Tracer records each query as a tree of query-scoped spans, and can
	// still render the flat step flow (the paper's Figure 8).
	Tracer = trace.Tracer
)

// The execution strategies: centralized, basic localized, parallel
// localized, and the signature-assisted localized variants.
const (
	CA  = exec.CA
	BL  = exec.BL
	PL  = exec.PL
	SBL = exec.SBL
	SPL = exec.SPL
)

// Execution helpers.
var (
	// NewEngine builds a query engine from a federation configuration.
	NewEngine = exec.New
	// Algorithms lists the paper's strategies (CA, BL, PL).
	Algorithms = exec.Algorithms
	// AllAlgorithms additionally includes SBL and SPL.
	AllAlgorithms = exec.AllAlgorithms
	// DefaultRates returns the paper's Table 1 cost parameters.
	DefaultRates = fabric.DefaultRates
	// NewRealRuntime executes strategies with goroutines and wall-clock
	// time, counting modeled costs.
	NewRealRuntime = fabric.NewReal
	// NewSimRuntime executes strategies inside the deterministic
	// discrete-event simulator; register every site plus the coordinator.
	NewSimRuntime = fabric.NewSim
)

//
// Signatures — the paper's Section 5 extension (strategies SBL and SPL).
//

type (
	// SignatureIndex is the replicated object-signature store.
	SignatureIndex = signature.Index
)

// BuildSignatures computes the signature index over a federation.
var BuildSignatures = signature.Build

//
// Planning — cost-based strategy selection from catalog statistics.
//

type (
	// Catalog summarizes the federation for the planner.
	Catalog = planner.Catalog
	// Estimate is one strategy's predicted cost.
	Estimate = planner.Estimate
)

// Planner helpers.
var (
	// BuildCatalog scans the federation and gathers statistics.
	BuildCatalog = planner.BuildCatalog
	// EstimateStrategies predicts CA/BL/PL costs for a bound query.
	EstimateStrategies = planner.Estimates
	// ChooseStrategy picks the strategy with the lowest predicted
	// response time.
	ChooseStrategy = planner.Choose
)

//
// Federation documents — JSON load/save.
//

type (
	// FederationDoc is a loaded federation (schemas, global schema,
	// databases, mapping tables).
	FederationDoc = fedfile.Federation
)

// Federation document helpers.
var (
	// LoadFederation reads a federation from a JSON file.
	LoadFederation = fedfile.Load
	// ParseFederation builds a federation from JSON bytes.
	ParseFederation = fedfile.Parse
	// ExportFederation renders a federation as JSON.
	ExportFederation = fedfile.Export
)

//
// Workloads and experiments — the paper's Table 2 generator and the
// Figure 9/10/11 harness.
//

type (
	// WorkloadRanges are the Table 2 parameter ranges.
	WorkloadRanges = workload.Ranges
	// Workload is one generated federation plus its query.
	Workload = workload.Workload
	// ExperimentConfig drives a simulation experiment.
	ExperimentConfig = sim.Config
	// Experiment is a reproduced figure: per-algorithm series.
	Experiment = sim.Experiment
)

// Workload and experiment helpers.
var (
	// DefaultWorkloadRanges returns the paper's Table 2 default setting.
	DefaultWorkloadRanges = workload.DefaultRanges
	// GenerateWorkload builds one randomized federation from drawn
	// parameters.
	GenerateWorkload = workload.Generate
	// DefaultExperimentConfig returns the Table 1/2 experiment setting.
	DefaultExperimentConfig = sim.DefaultConfig
	// Figure9, Figure10 and Figure11 regenerate the paper's evaluation
	// figures; SignatureAblation and NetworkSweep are this repository's
	// extensions.
	Figure9           = sim.Figure9
	Figure10          = sim.Figure10
	Figure11          = sim.Figure11
	SignatureAblation = sim.SignatureAblation
	NetworkSweep      = sim.NetworkSweep
	// PlannerAccuracy scores cost-based strategy selection (E9).
	PlannerAccuracy = sim.PlannerAccuracy
)

//
// Observability — query-scoped spans, the per-site metrics registry, and
// the live HTTP surface (/metrics, /healthz, /debug/trace/last).
//

type (
	// Span is one recorded query-scoped span: site, phase tags (O, I, P),
	// wall and virtual durations, and attached counters.
	Span = trace.Span
	// SpanID identifies a span within one tracer; 0 means none.
	SpanID = trace.SpanID
	// SpanHandle mutates a live span (phases, counters, end).
	SpanHandle = trace.Handle
	// TraceEvent is one flat step-flow event derived from the spans.
	TraceEvent = trace.Event
	// MetricsRegistry holds counters, gauges and histograms keyed by
	// (site, peer, algorithm, phase). Wire one into EngineConfig.Metrics,
	// SiteServerConfig.Metrics or RemoteCoordinator.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricsLabels keys one instrument within a registry.
	MetricsLabels = metrics.Labels
	// MetricsSnapshot is a point-in-time registry copy supporting Delta,
	// Merge, and text/JSON rendering.
	MetricsSnapshot = metrics.Snapshot
	// ObsServer is a running observability HTTP endpoint.
	ObsServer = obs.Server
)

// Observability helpers.
var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = metrics.New
	// ServeObservability binds the HTTP observability surface (/metrics,
	// /healthz, /debug/trace/last, /debug/vars) for one site.
	ServeObservability = obs.Serve
)

//
// TCP deployment — the federation over real sockets.
//

type (
	// SiteServer serves one component database over TCP.
	SiteServer = remote.Server
	// SiteServerConfig assembles a site server.
	SiteServerConfig = remote.ServerConfig
	// RemoteCoordinator executes queries (and inserts) against a cluster
	// of site servers.
	RemoteCoordinator = remote.Coordinator
)

// NewSiteServer wraps a component database for network duty.
var NewSiteServer = remote.NewServer

//
// Example federation — the paper's Figures 1–5 school databases, used by
// the examples, the tests and the CLIs.
//

type (
	// ExampleFixture bundles the school federation: schemas, global
	// schema, databases and mapping tables.
	ExampleFixture = school.Fixture
)

// SchoolQ1 is the paper's example query Q1.
const SchoolQ1 = school.Q1

// SchoolExample builds a fresh copy of the school federation.
var SchoolExample = school.New
